package directed

import (
	"sort"
	"strings"
	"testing"
)

func jointOf(t *testing.T, classes ...JointClass) *JointDistribution {
	t.Helper()
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].Out != classes[j].Out {
			return classes[i].Out < classes[j].Out
		}
		return classes[i].In < classes[j].In
	})
	d := &JointDistribution{Classes: classes}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestKleitmanWangGraphicalCases pins realizable bidegree sequences:
// the construction must succeed and realize them exactly.
func TestKleitmanWangGraphicalCases(t *testing.T) {
	cases := []struct {
		name string
		d    *JointDistribution
	}{
		{"3-cycle", jointOf(t, JointClass{Out: 1, In: 1, Count: 3})},
		{"complete-k4", jointOf(t, JointClass{Out: 3, In: 3, Count: 4})},
		{"star-out", jointOf(t, JointClass{Out: 4, In: 0, Count: 1}, JointClass{Out: 0, In: 1, Count: 4})},
		{"mixed", jointOf(t, JointClass{Out: 2, In: 1, Count: 2}, JointClass{Out: 1, In: 2, Count: 2})},
		{"asymmetric", jointOf(t, JointClass{Out: 3, In: 0, Count: 2}, JointClass{Out: 0, In: 2, Count: 3})},
	}
	for _, c := range cases {
		al, err := KleitmanWang(c.d)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if rep := al.CheckSimplicity(); !rep.IsSimple() {
			t.Errorf("%s: not simple: %+v", c.name, rep)
		}
		if got := OfArcList(al, 1); !jointEqual(got, c.d) {
			t.Errorf("%s: realized wrong joint distribution", c.name)
		}
	}
}

func jointEqual(a, b *JointDistribution) bool {
	ao, ai := a.ToJointDegrees()
	bo, bi := b.ToJointDegrees()
	if len(ao) != len(bo) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] || ai[i] != bi[i] {
			return false
		}
	}
	return true
}

// TestKleitmanWangRejectionPaths exercises each distinct error path
// with its message, so refactors cannot silently change which inputs
// fail or how they are reported.
func TestKleitmanWangRejectionPaths(t *testing.T) {
	// Unbalanced stubs: caught before construction starts.
	unbalanced := &JointDistribution{Classes: []JointClass{{Out: 2, In: 1, Count: 3}}}
	if _, err := KleitmanWang(unbalanced); err == nil || !strings.Contains(err.Error(), "out stubs") {
		t.Errorf("unbalanced: err = %v, want out-stubs message", err)
	}

	// Balanced but non-realizable: out-degree n-1 everywhere plus an
	// extra stub has nowhere to go. {Out:2,In:2}×2 with loops barred.
	dense := &JointDistribution{Classes: []JointClass{{Out: 2, In: 2, Count: 2}}}
	if _, err := KleitmanWang(dense); err == nil || !strings.Contains(err.Error(), "not realizable") {
		t.Errorf("dense: err = %v, want not-realizable message", err)
	}
	if dense.IsRealizable() {
		t.Error("Fulkerson check disagrees: dense marked realizable")
	}

	// Invalid distribution (negative degree) fails validation.
	invalid := &JointDistribution{Classes: []JointClass{{Out: -1, In: 0, Count: 1}}}
	if _, err := KleitmanWang(invalid); err == nil {
		t.Error("negative out-degree accepted")
	}
}

// TestKleitmanWangSecondaryTieBreak is the regression the construction
// documents: the 3-cycle sequence {1,1,1}/{1,1,1} strands a stub if
// targets with remaining out-degree are not preferred. Scale it up to
// make the tie-break repeatedly load-bearing.
func TestKleitmanWangSecondaryTieBreak(t *testing.T) {
	for _, n := range []int64{3, 5, 9, 12} {
		d := jointOf(t, JointClass{Out: 1, In: 1, Count: n})
		al, err := KleitmanWang(d)
		if err != nil {
			t.Fatalf("n=%d cycle sequence: %v", n, err)
		}
		if int64(al.NumArcs()) != n {
			t.Fatalf("n=%d: %d arcs", n, al.NumArcs())
		}
		if rep := al.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("n=%d: not simple: %+v", n, rep)
		}
	}
}

// TestKleitmanWangStaleHeapReKey exercises the stale-secondary-key
// path: vertices that both send and receive sit in the heap with a
// recorded outRem that goes stale once their own source step runs, so
// later pops must re-key and retry instead of trusting the entry.
func TestKleitmanWangStaleHeapReKey(t *testing.T) {
	// Every vertex has both in- and out-degree, so each one's heap
	// entry is live across other vertices' source steps.
	d := jointOf(t,
		JointClass{Out: 2, In: 1, Count: 2},
		JointClass{Out: 1, In: 2, Count: 2},
	)
	al, err := KleitmanWang(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep := al.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	if got := OfArcList(al, 1); !jointEqual(got, d) {
		t.Error("realized wrong joint distribution")
	}
}

// TestKleitmanWangDeterministic: the construction is fully
// deterministic — two runs must produce identical arc lists.
func TestKleitmanWangDeterministic(t *testing.T) {
	d := jointOf(t,
		JointClass{Out: 2, In: 1, Count: 4},
		JointClass{Out: 1, In: 2, Count: 4},
	)
	a, err := KleitmanWang(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KleitmanWang(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arcs) != len(b.Arcs) {
		t.Fatal("arc counts differ")
	}
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			t.Fatalf("runs diverged at arc %d", i)
		}
	}
}
