package directed

import (
	"testing"
	"testing/quick"
)

func TestArcKeyRoundTrip(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		a := Arc{From: u, To: v}
		return ArcFromKey(a.Key()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArcKeyOrderSensitive(t *testing.T) {
	a := Arc{From: 1, To: 2}
	b := Arc{From: 2, To: 1}
	if a.Key() == b.Key() {
		t.Error("directed keys must distinguish orientation")
	}
}

func TestArcString(t *testing.T) {
	if got := (Arc{From: 3, To: 7}).String(); got != "(3->7)" {
		t.Errorf("String = %q", got)
	}
}

func TestNewArcListValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range arc accepted")
		}
	}()
	NewArcList([]Arc{{From: 0, To: 9}}, 3)
}

func TestDegrees(t *testing.T) {
	al := NewArcList([]Arc{{0, 1}, {0, 2}, {1, 2}, {2, 2}}, 3)
	for _, p := range []int{1, 4} {
		out, in := al.Degrees(p)
		wantOut := []int64{2, 1, 1}
		wantIn := []int64{0, 1, 3}
		for v := range wantOut {
			if out[v] != wantOut[v] || in[v] != wantIn[v] {
				t.Errorf("p=%d v=%d: (out,in) = (%d,%d), want (%d,%d)",
					p, v, out[v], in[v], wantOut[v], wantIn[v])
			}
		}
	}
}

func TestCheckSimplicityDirected(t *testing.T) {
	cases := []struct {
		arcs []Arc
		want Simplicity
	}{
		{[]Arc{{0, 1}, {1, 0}}, Simplicity{0, 0}}, // antiparallel pair is simple
		{[]Arc{{0, 1}, {0, 1}}, Simplicity{0, 1}},
		{[]Arc{{1, 1}}, Simplicity{1, 0}},
		{nil, Simplicity{0, 0}},
	}
	for i, c := range cases {
		al := NewArcList(c.arcs, 2)
		if got := al.CheckSimplicity(); got != c.want {
			t.Errorf("case %d: %+v, want %+v", i, got, c.want)
		}
	}
}

func TestSimplifyDirected(t *testing.T) {
	al := NewArcList([]Arc{{0, 1}, {0, 1}, {1, 1}, {1, 0}}, 2)
	simple, rep := al.Simplify()
	if rep.DuplicateArcs != 1 || rep.SelfLoops != 1 {
		t.Errorf("report = %+v", rep)
	}
	if simple.NumArcs() != 2 {
		t.Errorf("kept %d arcs, want 2", simple.NumArcs())
	}
	if !simple.CheckSimplicity().IsSimple() {
		t.Error("simplify output not simple")
	}
}

func TestReciprocity(t *testing.T) {
	// (0,1)+(1,0) reciprocated; (0,2) not.
	al := NewArcList([]Arc{{0, 1}, {1, 0}, {0, 2}}, 3)
	if got := al.Reciprocity(); got < 0.66 || got > 0.67 {
		t.Errorf("Reciprocity = %v, want 2/3", got)
	}
	if got := NewArcList(nil, 0).Reciprocity(); got != 0 {
		t.Errorf("empty reciprocity = %v", got)
	}
}

func TestEqualAsSetsDirected(t *testing.T) {
	a := NewArcList([]Arc{{0, 1}, {2, 3}}, 4)
	b := NewArcList([]Arc{{2, 3}, {0, 1}}, 4)
	if !a.EqualAsSets(b) {
		t.Error("order must not matter")
	}
	c := NewArcList([]Arc{{1, 0}, {2, 3}}, 4)
	if a.EqualAsSets(c) {
		t.Error("orientation must matter")
	}
}

func TestJointDistributionBasics(t *testing.T) {
	out := []int64{2, 1, 1, 0}
	in := []int64{0, 1, 1, 2}
	d := FromJointDegrees(out, in)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() != 4 {
		t.Errorf("NumVertices = %d", d.NumVertices())
	}
	if d.OutStubs() != 4 || d.InStubs() != 4 {
		t.Errorf("stubs = %d/%d", d.OutStubs(), d.InStubs())
	}
	if d.NumArcs() != 4 {
		t.Errorf("NumArcs = %d", d.NumArcs())
	}
	if d.MaxOut() != 2 || d.MaxIn() != 2 {
		t.Errorf("max degrees = %d/%d", d.MaxOut(), d.MaxIn())
	}
	// Round trip through ToJointDegrees preserves the multiset.
	o2, i2 := d.ToJointDegrees()
	d2 := FromJointDegrees(o2, i2)
	if len(d2.Classes) != len(d.Classes) {
		t.Fatal("round trip changed classes")
	}
	for i := range d.Classes {
		if d2.Classes[i] != d.Classes[i] {
			t.Errorf("class %d: %+v vs %+v", i, d2.Classes[i], d.Classes[i])
		}
	}
}

func TestJointValidateRejects(t *testing.T) {
	bad := []*JointDistribution{
		{Classes: []JointClass{{Out: -1, In: 0, Count: 1}}},
		{Classes: []JointClass{{Out: 1, In: 1, Count: 0}}},
		{Classes: []JointClass{{Out: 2, In: 0, Count: 1}, {Out: 1, In: 0, Count: 1}}},
		{Classes: []JointClass{{Out: 1, In: 1, Count: 1}, {Out: 1, In: 1, Count: 2}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad distribution %d accepted", i)
		}
	}
}

func TestIsRealizableKnownCases(t *testing.T) {
	cases := []struct {
		out, in []int64
		want    bool
	}{
		{[]int64{1, 0}, []int64{0, 1}, true},        // single arc
		{[]int64{1, 1}, []int64{1, 1}, true},        // 2-cycle
		{[]int64{2, 0}, []int64{0, 2}, false},       // duplicate arc needed
		{[]int64{1, 1, 1}, []int64{1, 1, 1}, true},  // 3-cycle
		{[]int64{2, 2, 2}, []int64{2, 2, 2}, true},  // complete digraph K3
		{[]int64{3, 0, 0}, []int64{0, 2, 1}, false}, // out 3 but only 2 other vertices
		{[]int64{1, 0}, []int64{1, 0}, false},       // would need a loop
		{[]int64{0, 0}, []int64{0, 0}, true},        // empty
		{[]int64{2, 1, 0}, []int64{0, 1, 2}, true},  // DAG
		{[]int64{1, 1}, []int64{2, 0}, false},       // v0's arc has no legal target
		{[]int64{0, 1, 1}, []int64{2, 0, 0}, true},  // both others point at vertex 0
	}
	for i, c := range cases {
		d := FromJointDegrees(c.out, c.in)
		if got := d.IsRealizable(); got != c.want {
			t.Errorf("case %d (%v/%v): IsRealizable = %v, want %v", i, c.out, c.in, got, c.want)
		}
	}
}

func TestIsRealizableUnbalanced(t *testing.T) {
	d := FromJointDegrees([]int64{2, 0}, []int64{0, 1})
	if d.IsRealizable() {
		t.Error("unbalanced stub totals reported realizable")
	}
}

func TestClassOfVertexDirected(t *testing.T) {
	d := FromJointDegrees([]int64{1, 1, 2}, []int64{2, 1, 1})
	off := d.VertexOffsets(1)
	for v := int64(0); v < d.NumVertices(); v++ {
		c := ClassOfVertex(off, v)
		if c < 0 || c >= d.NumClasses() {
			t.Fatalf("vertex %d class %d out of range", v, c)
		}
		if v < off[c] || v >= off[c+1] {
			t.Fatalf("vertex %d not within class %d bounds", v, c)
		}
	}
}
