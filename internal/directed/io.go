package directed

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteArcListText writes one "from to" pair per line, preserving list
// order and orientation.
func WriteArcListText(w io.Writer, al *ArcList) error {
	bw := bufio.NewWriter(w)
	for _, a := range al.Arcs {
		if _, err := fmt.Fprintf(bw, "%d %d\n", a.From, a.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadArcListText parses "from to" pairs, one per line; '#' and '%'
// comment lines and blanks are skipped.
func ReadArcListText(r io.Reader) (*ArcList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var arcs []Arc
	var maxID int32 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("directed: line %d: want two vertex IDs, got %q", line, text)
		}
		from, err := parseVertexID(fields[0])
		if err != nil {
			return nil, fmt.Errorf("directed: line %d: %v", line, err)
		}
		to, err := parseVertexID(fields[1])
		if err != nil {
			return nil, fmt.Errorf("directed: line %d: %v", line, err)
		}
		arcs = append(arcs, Arc{From: from, To: to})
		if from > maxID {
			maxID = from
		}
		if to > maxID {
			maxID = to
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("directed: reading arc list: %w", err)
	}
	return &ArcList{Arcs: arcs, NumVertices: int(maxID + 1)}, nil
}

func parseVertexID(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex ID %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative vertex ID %d", v)
	}
	return int32(v), nil
}

// WriteJoint emits the joint distribution as "out in count" lines.
func WriteJoint(w io.Writer, d *JointDistribution) error {
	bw := bufio.NewWriter(w)
	for _, c := range d.Classes {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", c.Out, c.In, c.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJoint parses "out in count" lines; blanks and '#' comments are
// skipped; (out, in) pairs must be unique.
func ReadJoint(r io.Reader) (*JointDistribution, error) {
	sc := bufio.NewScanner(r)
	type pair struct{ o, i int64 }
	counts := map[pair]int64{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("directed: line %d: want \"out in count\", got %q", line, text)
		}
		vals := make([]int64, 3)
		for k, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("directed: line %d: bad value %q", line, f)
			}
			vals[k] = v
		}
		if vals[2] == 0 {
			return nil, fmt.Errorf("directed: line %d: zero count", line)
		}
		p := pair{vals[0], vals[1]}
		if _, dup := counts[p]; dup {
			return nil, fmt.Errorf("directed: line %d: duplicate class (%d,%d)", line, p.o, p.i)
		}
		counts[p] = vals[2]
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("directed: reading joint distribution: %w", err)
	}
	classes := make([]JointClass, 0, len(counts))
	for p, n := range counts {
		classes = append(classes, JointClass{Out: p.o, In: p.i, Count: n})
	}
	sort.Slice(classes, func(a, b int) bool {
		if classes[a].Out != classes[b].Out {
			return classes[a].Out < classes[b].Out
		}
		return classes[a].In < classes[b].In
	})
	d := &JointDistribution{Classes: classes}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
