package directed

import (
	"math"
	"testing"
	"testing/quick"

	"nullgraph/internal/rng"
)

// cycleDigraph returns a directed n-cycle: simple, 1-regular in and out.
func cycleDigraph(n int) *ArcList {
	arcs := make([]Arc, n)
	for i := 0; i < n; i++ {
		arcs[i] = Arc{From: int32(i), To: int32((i + 1) % n)}
	}
	return NewArcList(arcs, n)
}

// randomJoint builds a realizable joint distribution by generating a
// random simple digraph and reading its degrees back.
func randomJoint(t testing.TB, n int, arcsPerVertex int, seed uint64) *JointDistribution {
	t.Helper()
	src := rng.New(seed)
	seen := map[uint64]struct{}{}
	var arcs []Arc
	for len(arcs) < n*arcsPerVertex {
		a := Arc{From: int32(src.Intn(n)), To: int32(src.Intn(n))}
		if a.IsLoop() {
			continue
		}
		if _, dup := seen[a.Key()]; dup {
			continue
		}
		seen[a.Key()] = struct{}{}
		arcs = append(arcs, a)
	}
	return OfArcList(NewArcList(arcs, n), 1)
}

func TestKleitmanWangRealizesExactly(t *testing.T) {
	cases := []*JointDistribution{
		FromJointDegrees([]int64{1, 0}, []int64{0, 1}),
		FromJointDegrees([]int64{1, 1, 1}, []int64{1, 1, 1}),
		FromJointDegrees([]int64{2, 2, 2}, []int64{2, 2, 2}),
		FromJointDegrees([]int64{2, 1, 0}, []int64{0, 1, 2}),
		randomJoint(t, 200, 5, 7),
	}
	for i, d := range cases {
		al, err := KleitmanWang(d)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if rep := al.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("case %d: not simple: %+v", i, rep)
		}
		got := OfArcList(al, 1)
		if len(got.Classes) != len(d.Classes) {
			t.Fatalf("case %d: class count %d vs %d", i, len(got.Classes), len(d.Classes))
		}
		for c := range d.Classes {
			if got.Classes[c] != d.Classes[c] {
				t.Fatalf("case %d class %d: %+v vs %+v", i, c, got.Classes[c], d.Classes[c])
			}
		}
	}
}

func TestKleitmanWangRejectsNonRealizable(t *testing.T) {
	bad := []*JointDistribution{
		FromJointDegrees([]int64{2, 0}, []int64{0, 2}),
		FromJointDegrees([]int64{1, 0}, []int64{1, 0}),
		FromJointDegrees([]int64{2, 0}, []int64{0, 1}),
	}
	for i, d := range bad {
		if _, err := KleitmanWang(d); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestKleitmanWangMatchesIsRealizableProperty(t *testing.T) {
	f := func(rawOut, rawIn []uint8) bool {
		n := len(rawOut)
		if n == 0 || n > 10 {
			return true
		}
		if len(rawIn) < n {
			return true
		}
		out := make([]int64, n)
		in := make([]int64, n)
		var so, si int64
		for i := 0; i < n; i++ {
			out[i] = int64(rawOut[i]) % int64(n)
			in[i] = int64(rawIn[i]) % int64(n)
			so += out[i]
			si += in[i]
		}
		if so != si {
			return true // construction requires balance; skip
		}
		d := FromJointDegrees(out, in)
		_, err := KleitmanWang(d)
		return (err == nil) == d.IsRealizable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestSwapArcsPreservesInvariants(t *testing.T) {
	for _, workers := range []int{1, 4} {
		al := cycleDigraph(500)
		outBefore, inBefore := al.Degrees(1)
		res := SwapArcs(al, SwapOptions{Iterations: 8, Workers: workers, Seed: 5})
		outAfter, inAfter := al.Degrees(1)
		for v := range outBefore {
			if outBefore[v] != outAfter[v] || inBefore[v] != inAfter[v] {
				t.Fatalf("workers=%d: degrees changed at %d", workers, v)
			}
		}
		if rep := al.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("workers=%d: not simple: %+v", workers, rep)
		}
		if res.TotalSuccesses == 0 {
			t.Errorf("workers=%d: no swaps on a 500-cycle", workers)
		}
	}
}

func TestSwapArcsChangesGraph(t *testing.T) {
	al := cycleDigraph(1000)
	orig := al.Clone()
	SwapArcs(al, SwapOptions{Iterations: 5, Workers: 4, Seed: 3})
	if al.EqualAsSets(orig) {
		t.Error("digraph unchanged after swapping")
	}
}

func TestSwapArcsDeterministicSingleWorker(t *testing.T) {
	a, b := cycleDigraph(800), cycleDigraph(800)
	SwapArcs(a, SwapOptions{Iterations: 4, Workers: 1, Seed: 9})
	SwapArcs(b, SwapOptions{Iterations: 4, Workers: 1, Seed: 9})
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			t.Fatalf("same (seed, workers=1) diverged at %d", i)
		}
	}
}

func TestSwapArcsUntilMixed(t *testing.T) {
	al := cycleDigraph(256)
	res, mixed := SwapArcsUntilMixed(al, SwapOptions{Workers: 2, Seed: 11}, 200)
	if !mixed {
		t.Fatalf("did not mix in %d iterations", len(res.PerIteration))
	}
}

func TestSwapArcsSimplifiesMultiArcs(t *testing.T) {
	var arcs []Arc
	for i := 0; i < 30; i++ {
		arcs = append(arcs, Arc{From: 0, To: 1})
	}
	for i := int32(2); i < 200; i += 2 {
		arcs = append(arcs, Arc{From: i, To: i + 1})
	}
	al := NewArcList(arcs, 200)
	SwapArcs(al, SwapOptions{Iterations: 60, Workers: 4, Seed: 1})
	if rep := al.CheckSimplicity(); !rep.IsSimple() {
		t.Errorf("multi-arcs survive after 60 iterations: %+v", rep)
	}
}

func TestGenerateProbabilitiesRegular(t *testing.T) {
	// 1000 vertices, out=in=5 for all: exact solution expected.
	out := make([]int64, 1000)
	in := make([]int64, 1000)
	for i := range out {
		out[i], in[i] = 5, 5
	}
	d := FromJointDegrees(out, in)
	m := GenerateProbabilities(d, 2)
	or, ir := RowResiduals(d, m)
	if math.Abs(or[0]) > 1e-6 || math.Abs(ir[0]) > 1e-6 {
		t.Errorf("regular residuals = %v / %v", or[0], ir[0])
	}
	if exp := ExpectedArcs(d, m); math.Abs(exp-5000) > 1e-6 {
		t.Errorf("ExpectedArcs = %v, want 5000", exp)
	}
}

func TestGenerateProbabilitiesBipartiteExact(t *testing.T) {
	// Sources and sinks: 100 vertices out=3/in=0, 100 vertices out=0/in=3.
	out := make([]int64, 200)
	in := make([]int64, 200)
	for i := 0; i < 100; i++ {
		out[i] = 3
		in[100+i] = 3
	}
	d := FromJointDegrees(out, in)
	m := GenerateProbabilities(d, 1)
	or, ir := RowResiduals(d, m)
	for c := range or {
		if math.Abs(or[c]) > 1e-6 || math.Abs(ir[c]) > 1e-6 {
			t.Errorf("class %d residuals %v / %v", c, or[c], ir[c])
		}
	}
}

func TestGenerateProbabilitiesSkewed(t *testing.T) {
	d := randomJoint(t, 2000, 4, 3)
	m := GenerateProbabilities(d, 4)
	for i := 0; i < m.Dim(); i++ {
		for j := 0; j < m.Dim(); j++ {
			if v := m.At(i, j); v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("P(%d,%d) = %v", i, j, v)
			}
		}
	}
	exp := ExpectedArcs(d, m)
	target := float64(d.NumArcs())
	if math.Abs(exp-target) > 0.05*target {
		t.Errorf("expected arcs %v vs target %v", exp, target)
	}
}

func TestChungLuProbabilitiesDirected(t *testing.T) {
	d := FromJointDegrees([]int64{1, 1}, []int64{1, 1})
	m := ChungLuProbabilities(d) // single class (1,1), arcs=2
	if got := m.At(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P = %v, want 0.5", got)
	}
}

func TestGenerateArcsSimpleAndSized(t *testing.T) {
	d := randomJoint(t, 3000, 5, 17)
	m := GenerateProbabilities(d, 2)
	want := ExpectedArcs(d, m)
	var total float64
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		al, err := GenerateArcs(d, m, SkipOptions{Workers: 4, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if rep := al.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("not simple: %+v", rep)
		}
		total += float64(al.NumArcs())
	}
	mean := total / trials
	tol := 5 * math.Sqrt(want) / math.Sqrt(trials)
	if math.Abs(mean-want) > tol {
		t.Errorf("mean arcs %v, want %v ± %v", mean, want, tol)
	}
}

func TestGenerateArcsDeterministicAcrossWorkers(t *testing.T) {
	d := randomJoint(t, 1000, 4, 23)
	m := GenerateProbabilities(d, 1)
	a, err := GenerateArcs(d, m, SkipOptions{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateArcs(d, m, SkipOptions{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arcs) != len(b.Arcs) {
		t.Fatalf("arc counts differ: %d vs %d", len(a.Arcs), len(b.Arcs))
	}
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			t.Fatalf("arc %d differs across worker counts", i)
		}
	}
}

func TestGenerateArcsDiagonalExcludesLoops(t *testing.T) {
	// One class, P=1: complete digraph without loops.
	out := []int64{4, 4, 4, 4, 4}
	in := []int64{4, 4, 4, 4, 4}
	d := FromJointDegrees(out, in)
	m := NewProbMatrix(1)
	m.Set(0, 0, 1)
	al, err := GenerateArcs(d, m, SkipOptions{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if al.NumArcs() != 20 {
		t.Errorf("arcs = %d, want 20 (complete digraph on 5)", al.NumArcs())
	}
	for _, a := range al.Arcs {
		if a.IsLoop() {
			t.Fatalf("loop emitted: %v", a)
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	d := randomJoint(t, 4000, 5, 31)
	res, err := Generate(d, Options{Workers: 4, Seed: 7, SwapIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("pipeline output not simple: %+v", rep)
	}
	// Arc count within a few percent.
	got := float64(res.Graph.NumArcs())
	target := float64(d.NumArcs())
	if math.Abs(got-target) > 0.05*target {
		t.Errorf("arcs %v vs target %v", got, target)
	}
	if res.Phases.Total() <= 0 {
		t.Error("phases not recorded")
	}
	if len(res.Swaps.PerIteration) != 6 {
		t.Errorf("swap iterations = %d", len(res.Swaps.PerIteration))
	}
}

func TestPipelineRejectsUnbalanced(t *testing.T) {
	d := &JointDistribution{Classes: []JointClass{{Out: 2, In: 1, Count: 3}}}
	if _, err := Generate(d, Options{}); err == nil {
		t.Error("unbalanced joint distribution accepted")
	}
}

func TestShuffleDirectedPreservesJointDegrees(t *testing.T) {
	al := cycleDigraph(400)
	before := OfArcList(al, 1)
	res, err := Shuffle(al, Options{Workers: 2, Seed: 3, MixUntilSwapped: true})
	if err != nil {
		t.Fatal(err)
	}
	after := OfArcList(al, 1)
	if len(before.Classes) != len(after.Classes) {
		t.Fatal("joint distribution changed")
	}
	for i := range before.Classes {
		if before.Classes[i] != after.Classes[i] {
			t.Fatal("joint distribution changed")
		}
	}
	if !res.Mixed {
		t.Error("cycle did not mix")
	}
}

func TestSwapUniformityDirectedMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// 3 vertices each out=in=1: exactly two simple digraphs exist — the
	// two directed 3-cycles. Long swap runs must visit both equally.
	counts := map[uint64]int{}
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		al := cycleDigraph(3)
		SwapArcs(al, SwapOptions{Iterations: 20, Workers: 1, Seed: rng.Mix64(uint64(trial) + 1)})
		var sig uint64
		for _, a := range al.Arcs {
			sig ^= rng.Mix64(a.Key())
		}
		counts[sig]++
	}
	if len(counts) != 2 {
		t.Fatalf("reached %d states, want 2", len(counts))
	}
	for sig, c := range counts {
		want := float64(trials) / 2
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want/2) {
			t.Errorf("state %x: %d of %d", sig, c, trials)
		}
	}
}

func BenchmarkDirectedSwapIteration(b *testing.B) {
	al := cycleDigraph(1 << 17)
	eng := NewSwapEngine(al, SwapOptions{Workers: 0, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.SetBytes(int64(al.NumArcs()) * 8)
}

func BenchmarkDirectedPipeline(b *testing.B) {
	d := randomJoint(b, 50000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Generate(d, Options{Seed: uint64(i), SwapIterations: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Graph.NumArcs()) * 8)
	}
}
