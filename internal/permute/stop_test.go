package permute

import (
	"testing"

	"nullgraph/internal/par"
)

// TestFillTargetsStopPreTripped: a tripped flag stops target generation
// before the first write.
func TestFillTargetsStopPreTripped(t *testing.T) {
	h := make([]int32, 4096)
	for i := range h {
		h[i] = -1
	}
	stop := &par.Stop{}
	stop.Set()
	FillTargetsStop(h, 11, 0, 0, len(h), stop)
	for i, v := range h {
		if v != -1 {
			t.Fatalf("pre-tripped FillTargetsStop wrote h[%d] = %d", i, v)
		}
	}
}

// TestFillTargetsStopUntrippedBitIdentical: an untripped stop must
// produce exactly the FillTargets stream — polling consumes no
// randomness.
func TestFillTargetsStopUntrippedBitIdentical(t *testing.T) {
	const n = 100_000
	plain := make([]int32, n)
	FillTargets(plain, 11, 0, 0, n)
	watched := make([]int32, n)
	FillTargetsStop(watched, 11, 0, 0, n, &par.Stop{})
	for i := range plain {
		if plain[i] != watched[i] {
			t.Fatalf("stop polling changed the target stream at %d", i)
		}
	}
}

// TestApplierStopUntrippedBitIdentical: an Applier carrying a
// never-tripped stop must permute exactly like one without.
func TestApplierStopUntrippedBitIdentical(t *testing.T) {
	const n = 50_000
	h := Targets(7, n, 2)
	plain := make([]int64, n)
	watched := make([]int64, n)
	for i := range plain {
		plain[i] = int64(i)
		watched[i] = int64(i)
	}

	a1 := NewApplier[int64](NewScratch())
	a1.Apply(plain, h, 2, nil)
	a2 := NewApplier[int64](NewScratch())
	a2.SetStop(&par.Stop{})
	a2.Apply(watched, h, 2, nil)
	for i := range plain {
		if plain[i] != watched[i] {
			t.Fatalf("stop polling changed the permutation at %d", i)
		}
	}
}

// TestApplierStopPreTrippedPreservesMultiset: an abandoned apply may
// leave the data partially permuted but never corrupted — same
// multiset, and the Applier stays reusable afterwards.
func TestApplierStopPreTrippedPreservesMultiset(t *testing.T) {
	const n = 20_000
	h := Targets(3, n, 2)
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}

	a := NewApplier[int64](NewScratch())
	stop := &par.Stop{}
	stop.Set()
	a.SetStop(stop)
	a.Apply(data, h, 2, nil)

	seen := make(map[int64]int, n)
	for _, v := range data {
		seen[v]++
	}
	for i := int64(0); i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("value %d appears %d times after abandoned apply", i, seen[i])
		}
	}

	// Reuse after abort: clearing the stop must give the reference
	// permutation again.
	a.SetStop(nil)
	for i := range data {
		data[i] = int64(i)
	}
	a.Apply(data, h, 2, nil)
	want := make([]int64, n)
	for i := range want {
		want[i] = int64(i)
	}
	applySerial(want, h)
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("reused Applier diverges from serial reference at %d", i)
		}
	}
}
