package permute

import (
	"testing"

	"nullgraph/internal/par"
)

// TestTargetsIntoMatchesTargets locks the buffer-reusing entry point to
// the allocating one, including when the buffer is dirty from a
// previous, larger fill.
func TestTargetsIntoMatchesTargets(t *testing.T) {
	buf := make([]int32, 20000)
	for i := range buf {
		buf[i] = -7 // poison
	}
	for _, n := range []int{20000, 5000, 1} { // shrink between calls
		for _, p := range []int{1, 4} {
			want := Targets(99, n, p)
			got := buf[:n]
			TargetsInto(99, p, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: TargetsInto[%d] = %d, Targets %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestApplierDirtyReuseIsExact is satellite S3: an Applier whose
// Scratch is dirty from arbitrary earlier permutations must still
// reproduce the serial inside-out shuffle bit-for-bit, across growing
// and shrinking inputs and worker counts.
func TestApplierDirtyReuseIsExact(t *testing.T) {
	sc := NewScratch()
	ap := NewApplier[int](sc)
	// Deliberately varied sizes: grow, shrink far below the previous
	// fill (leaving stale bytes in every buffer), regrow.
	sizes := []int{serialCutoff * 4, serialCutoff, serialCutoff * 2, 2, serialCutoff * 3}
	for round, n := range sizes {
		for _, p := range []int{1, 2, 4} {
			seed := uint64(round*31 + p)
			h := Targets(seed, n, p)
			want := iota(n)
			applySerial(want, h)
			got := iota(n)
			ap.Apply(got, h, p, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d n=%d p=%d: dirty-scratch apply diverges at %d",
						round, n, p, i)
				}
			}
		}
	}
}

// TestApplierPoolMatchesNoPool: dispatching the reservation phases on a
// persistent pool must not change the output relative to per-phase
// goroutines (chunking is identical by construction).
func TestApplierPoolMatchesNoPool(t *testing.T) {
	const n = serialCutoff * 2
	const p = 4
	pool := par.NewPool(p)
	defer pool.Close()
	scPool := NewScratch()
	apPool := NewApplier[int](scPool)
	scPlain := NewScratch()
	apPlain := NewApplier[int](scPlain)
	for round := 0; round < 3; round++ {
		h := Targets(uint64(round)+55, n, p)
		a := iota(n)
		apPool.Apply(a, h, 0, pool)
		b := iota(n)
		apPlain.Apply(b, h, p, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: pool apply diverges from pool-free apply at %d", round, i)
			}
		}
	}
}

// TestSharedScratchAcrossAppliers mirrors the swap engine's usage: two
// appliers of different element types alternate on one Scratch, each
// must stay exact.
func TestSharedScratchAcrossAppliers(t *testing.T) {
	sc := NewScratch()
	apInt := NewApplier[int](sc)
	apByte := NewApplier[uint8](sc)
	const n = serialCutoff * 2
	for round := 0; round < 3; round++ {
		h := Targets(uint64(round)+7, n, 2)
		wantInt := iota(n)
		applySerial(wantInt, h)
		gotInt := iota(n)
		apInt.Apply(gotInt, h, 2, nil)
		wantByte := make([]uint8, n)
		gotByte := make([]uint8, n)
		for i := range wantByte {
			wantByte[i] = uint8(i)
			gotByte[i] = uint8(i)
		}
		applySerial(wantByte, h)
		apByte.Apply(gotByte, h, 2, nil)
		for i := 0; i < n; i++ {
			if gotInt[i] != wantInt[i] || gotByte[i] != wantByte[i] {
				t.Fatalf("round %d: shared-scratch appliers diverged at %d", round, i)
			}
		}
	}
}

// TestScratchReservationInvariant checks the documented idle invariant
// that makes dirty reuse safe: every reservation cell is restored to
// `none` after an Apply.
func TestScratchReservationInvariant(t *testing.T) {
	sc := NewScratch()
	ap := NewApplier[int](sc)
	const n = serialCutoff * 2
	h := Targets(13, n, 4)
	data := iota(n)
	ap.Apply(data, h, 4, nil)
	for i, v := range sc.r[:n] {
		if v != none {
			t.Fatalf("r[%d] = %d after Apply, want none", i, v)
		}
	}
}

func TestApplierLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	NewApplier[int](NewScratch()).Apply(make([]int, 3), make([]int32, 2), 1, nil)
}
