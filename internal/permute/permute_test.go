package permute

import (
	"math"
	"testing"
	"testing/quick"

	"nullgraph/internal/rng"
)

func isPermutationOfIota(data []int) bool {
	seen := make([]bool, len(data))
	for _, v := range data {
		if v < 0 || v >= len(data) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func iota(n int) []int {
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return data
}

func TestFisherYatesIsPermutation(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{0, 1, 2, 17, 1000} {
		data := iota(n)
		FisherYates(r, data)
		if !isPermutationOfIota(data) {
			t.Errorf("n=%d: not a permutation: %v", n, data)
		}
	}
}

func TestParallelIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, serialCutoff - 1, serialCutoff, 50000} {
		for _, p := range []int{1, 2, 4, 8} {
			data := iota(n)
			Parallel(123, data, p)
			if !isPermutationOfIota(data) {
				t.Fatalf("n=%d p=%d: not a permutation", n, p)
			}
		}
	}
}

func TestParallelMatchesSerialApply(t *testing.T) {
	// For identical targets the reservation algorithm must reproduce the
	// serial inside-out shuffle exactly.
	for _, n := range []int{2, 37, 5000, 20000} {
		h := make([]int32, n)
		targets(77, n, 4, h)
		want := iota(n)
		applySerial(want, h)
		got := iota(n)
		applyParallel(got, h, 4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: parallel apply diverges from serial at %d", n, i)
			}
		}
	}
}

func TestParallelDeterministicForFixedSeedAndWorkers(t *testing.T) {
	const n = 30000
	a, b := iota(n), iota(n)
	Parallel(9, a, 4)
	Parallel(9, b, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed,p) diverged at %d", i)
		}
	}
	c := iota(n)
	Parallel(10, c, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical permutations")
	}
}

func TestTargetsInRange(t *testing.T) {
	const n = 10000
	h := make([]int32, n)
	targets(3, n, 8, h)
	for i, target := range h {
		if int(target) < i || int(target) >= n {
			t.Fatalf("h[%d] = %d out of [%d, %d)", i, target, i, n)
		}
	}
}

func TestParallelUniformitySmall(t *testing.T) {
	// All 6 permutations of 3 elements should appear near-uniformly.
	// (Exercises the serial fallback path, which defines the
	// distribution for the parallel path too.)
	const trials = 60000
	counts := map[[3]int]int{}
	for trial := 0; trial < trials; trial++ {
		data := iota(3)
		Parallel(uint64(trial), data, 2)
		counts[[3]int{data[0], data[1], data[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(trials) / 6
	for perm, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("permutation %v seen %d times, want ~%v", perm, c, want)
		}
	}
}

func TestParallelUniformityLarge(t *testing.T) {
	// Position distribution check on the parallel path: element 0 should
	// land in each quarter of a large array about equally often.
	const n = serialCutoff * 2
	const trials = 400
	quarters := [4]int{}
	for trial := 0; trial < trials; trial++ {
		data := iota(n)
		Parallel(uint64(trial)+500, data, 4)
		for pos, v := range data {
			if v == 0 {
				quarters[pos*4/n]++
				break
			}
		}
	}
	for q, c := range quarters {
		want := float64(trials) / 4
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element 0 in quarter %d: %d of %d trials", q, c, trials)
		}
	}
}

func TestFisherYatesProperty(t *testing.T) {
	r := rng.New(11)
	f := func(n uint8) bool {
		data := iota(int(n))
		FisherYates(r, data)
		return isPermutationOfIota(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFisherYates(b *testing.B) {
	const n = 1 << 20
	data := iota(n)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FisherYates(r, data)
	}
	b.SetBytes(n * 8)
}

func BenchmarkParallelPermutation(b *testing.B) {
	const n = 1 << 20
	data := iota(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(uint64(i), data, 0)
	}
	b.SetBytes(n * 8)
}
