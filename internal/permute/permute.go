// Package permute implements random permutations of slices: a serial
// Fisher–Yates baseline and the parallel algorithm of Shun, Gu,
// Blelloch, Fineman and Gibbons ("Sequential random permutation, list
// contraction and tree contraction are highly parallel", SODA 2015),
// which the paper uses to permute the edge list before every swap
// iteration.
//
// The parallel algorithm executes the exact dependence structure of the
// sequential "inside-out" shuffle
//
//	for i = 0..n-1: swap(A[i], A[H[i]])  with H[i] uniform in [i, n)
//
// by repeatedly letting each uncommitted iteration i reserve the two
// cells it touches with a priority-writeMin, then committing iterations
// that hold both their reservations. Given the same swap-target array H,
// the output is bit-identical to the serial loop; randomness enters only
// through H.
package permute

import (
	"math"
	"sync/atomic"

	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// FisherYates shuffles data uniformly at random using the provided
// source. This is the serial baseline of the permutation ablation.
func FisherYates[T any](r *rng.Source, data []T) {
	for i := len(data) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		data[i], data[j] = data[j], data[i]
	}
}

// targets fills h with the inside-out swap targets: h[i] uniform in
// [i, n). Targets are drawn with per-worker streams over contiguous
// chunks, so the permutation is deterministic for fixed (seed, p).
func targets(seed uint64, n, p int, h []int32) {
	par.ForRange(n, p, func(w int, r par.Range) {
		src := rng.New(rng.Mix64(seed) ^ rng.Mix64(uint64(w)+0x51ed270b))
		for i := r.Begin; i < r.End; i++ {
			h[i] = int32(i) + int32(src.Uint64n(uint64(n-i)))
		}
	})
}

// applySerial executes the inside-out shuffle for the given target
// array. Used both by tests (as the reference) and by Parallel for
// small inputs.
func applySerial[T any](data []T, h []int32) {
	for i := range data {
		j := h[i]
		data[i], data[j] = data[j], data[i]
	}
}

// serialCutoff is the size below which Parallel falls back to the
// serial apply; reservation rounds don't pay for themselves on small
// slices.
const serialCutoff = 1 << 12

// Targets returns the deterministic inside-out swap-target array for
// (seed, n, p). Applying the same targets to multiple parallel arrays
// (e.g. the swap engine's edges and their bookkeeping flags) permutes
// them consistently.
func Targets(seed uint64, n, p int) []int32 {
	h := make([]int32, n)
	targets(seed, n, par.Workers(p), h)
	return h
}

// Apply permutes data according to a target array from Targets, choosing
// the serial or reservation-parallel execution by size.
func Apply[T any](data []T, h []int32, p int) {
	if len(data) != len(h) {
		panic("permute: Apply length mismatch")
	}
	if len(data) <= 1 {
		return
	}
	p = par.Workers(p)
	if len(data) < serialCutoff || p == 1 {
		applySerial(data, h)
		return
	}
	applyParallel(data, h, p)
}

// Parallel shuffles data uniformly at random with p workers, matching
// the serial inside-out shuffle on the same deterministic target array.
func Parallel[T any](seed uint64, data []T, p int) {
	n := len(data)
	if n <= 1 {
		return
	}
	p = par.Workers(p)
	h := make([]int32, n)
	targets(seed, n, p, h)
	if n < serialCutoff || p == 1 {
		applySerial(data, h)
		return
	}
	applyParallel(data, h, p)
}

// applyParallel runs the reservation algorithm: each round, every
// pending iteration i writeMin-reserves cells i and h[i]; iterations
// holding both reservations commit their swap. Priorities are iteration
// indices, so a committed iteration is one all of whose sequential
// predecessors on its cells have already committed — the final array is
// identical to applySerial(data, h).
func applyParallel[T any](data []T, h []int32, p int) {
	n := len(data)
	const none = int32(math.MaxInt32)
	r := make([]int32, n)
	for i := range r {
		r[i] = none
	}
	pending := make([]int32, n)
	for i := range pending {
		pending[i] = int32(i)
	}
	next := make([]int32, 0, n)

	writeMin := func(cell int, prio int32) {
		addr := &r[cell]
		for {
			cur := atomic.LoadInt32(addr)
			if cur <= prio {
				return
			}
			if atomic.CompareAndSwapInt32(addr, cur, prio) {
				return
			}
		}
	}

	for len(pending) > 0 {
		// Phase 1: reserve.
		par.For(len(pending), p, func(k int) {
			i := pending[k]
			writeMin(int(i), i)
			writeMin(int(h[i]), i)
		})
		// Phase 2: commit winners; collect losers per worker.
		ranges := par.Split(len(pending), p)
		buckets := make([][]int32, len(ranges))
		par.ForRange(len(pending), p, func(w int, rg par.Range) {
			var keep []int32
			for k := rg.Begin; k < rg.End; k++ {
				i := pending[k]
				j := h[i]
				if atomic.LoadInt32(&r[i]) == i && atomic.LoadInt32(&r[j]) == i {
					data[i], data[j] = data[j], data[i]
				} else {
					keep = append(keep, i)
				}
			}
			buckets[w] = keep
		})
		// Phase 3: reset reservations for the next round. Only cells
		// touched this round need clearing; do it for all pending
		// iterations (winners and losers both touched cells).
		par.For(len(pending), p, func(k int) {
			i := pending[k]
			atomic.StoreInt32(&r[i], none)
			atomic.StoreInt32(&r[h[i]], none)
		})
		next = next[:0]
		for _, b := range buckets {
			next = append(next, b...)
		}
		pending, next = next, pending
	}
}
