// Package permute implements random permutations of slices: a serial
// Fisher–Yates baseline and the parallel algorithm of Shun, Gu,
// Blelloch, Fineman and Gibbons ("Sequential random permutation, list
// contraction and tree contraction are highly parallel", SODA 2015),
// which the paper uses to permute the edge list before every swap
// iteration.
//
// The parallel algorithm executes the exact dependence structure of the
// sequential "inside-out" shuffle
//
//	for i = 0..n-1: swap(A[i], A[H[i]])  with H[i] uniform in [i, n)
//
// by repeatedly letting each uncommitted iteration i reserve the two
// cells it touches with a priority-writeMin, then committing iterations
// that hold both their reservations. Given the same swap-target array H,
// the output is bit-identical to the serial loop; randomness enters only
// through H.
//
// # Scratch reuse
//
// The reservation algorithm needs O(n) scratch (reservations, two
// pending buffers, per-worker loser lists). The one-shot entry points
// (Targets, Apply, Parallel) allocate it per call; hot loops that
// permute every iteration — the swap engines — instead hold a Scratch
// and per-element-type Appliers, which allocate only on first use or
// growth and are bit-identical to the one-shot paths no matter how
// dirty the reused buffers are (see the buffer invariants on Scratch).
package permute

import (
	"math"
	"sync/atomic"

	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// FisherYates shuffles data uniformly at random using the provided
// source. This is the serial baseline of the permutation ablation.
func FisherYates[T any](r *rng.Source, data []T) {
	for i := len(data) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		data[i], data[j] = data[j], data[i]
	}
}

// FillTargets fills h[begin:end) — worker w's chunk — with the
// deterministic inside-out swap targets for (seed, len(h)): h[i]
// uniform in [i, len(h)). The per-worker stream depends only on
// (seed, w), so any execution that splits [0, len(h)) into the same
// chunks produces the same array. The worker's source lives on the
// stack; the call does not allocate.
//
//nullgraph:hotpath
func FillTargets(h []int32, seed uint64, w, begin, end int) {
	var src rng.Block
	src.Reseed(rng.Mix64(seed) ^ rng.Mix64(uint64(w)+0x51ed270b))
	n := len(h)
	for i := begin; i < end; i++ {
		h[i] = int32(i) + int32(src.Uint64n(uint64(n-i)))
	}
}

// FillTargetsStop is FillTargets with a cooperative stop check every
// few thousand indices. The generated stream is a prefix of what
// FillTargets writes for the same (seed, w, begin): polling never
// consumes randomness, so an untripped stop changes nothing.
//
//nullgraph:hotpath
func FillTargetsStop(h []int32, seed uint64, w, begin, end int, stop *par.Stop) {
	var src rng.Block
	src.Reseed(rng.Mix64(seed) ^ rng.Mix64(uint64(w)+0x51ed270b))
	n := len(h)
	//nullgraph:cancelable
	for i := begin; i < end; i++ {
		if (i-begin)&8191 == 0 && stop.Stopped() {
			return
		}
		h[i] = int32(i) + int32(src.Uint64n(uint64(n-i)))
	}
}

// targets fills h with the inside-out swap targets via per-worker
// streams over contiguous chunks, so the permutation is deterministic
// for fixed (seed, p).
func targets(seed uint64, n, p int, h []int32) {
	par.ForRange(n, p, func(w int, r par.Range) {
		FillTargets(h[:n], seed, w, r.Begin, r.End)
	})
}

// TargetsInto is Targets writing into a caller-provided array: it fills
// h with the deterministic swap targets for (seed, len(h), p).
func TargetsInto(seed uint64, p int, h []int32) {
	targets(seed, len(h), par.Workers(p), h)
}

// Targets returns the deterministic inside-out swap-target array for
// (seed, n, p). Applying the same targets to multiple parallel arrays
// (e.g. the swap engine's edges and their bookkeeping flags) permutes
// them consistently.
func Targets(seed uint64, n, p int) []int32 {
	h := make([]int32, n)
	TargetsInto(seed, p, h)
	return h
}

// applySerial executes the inside-out shuffle for the given target
// array. Used both by tests (as the reference) and as the small-input /
// single-worker fast path.
//
//nullgraph:hotpath
func applySerial[T any](data []T, h []int32) {
	for i := range data {
		j := h[i]
		data[i], data[j] = data[j], data[i]
	}
}

// applySerialStop is applySerial with a coarse stop poll. An abandoned
// apply leaves data partially permuted — the same multiset of elements
// in a different order — never corrupted.
//
//nullgraph:hotpath
func applySerialStop[T any](data []T, h []int32, stop *par.Stop) {
	//nullgraph:cancelable
	for i := range data {
		if i&8191 == 0 && stop.Stopped() {
			return
		}
		j := h[i]
		data[i], data[j] = data[j], data[i]
	}
}

// serialCutoff is the size below which Apply falls back to the serial
// path; reservation rounds don't pay for themselves on small slices.
const serialCutoff = 1 << 12

const none = int32(math.MaxInt32)

// Scratch holds the reusable buffers of the reservation algorithm. One
// Scratch may back several Appliers (of different element types) as
// long as their Apply calls don't overlap in time.
//
// Buffer invariants that make dirty reuse safe:
//
//   - r (reservations) is all-`none` between Apply calls: round R's
//     reset phase clears exactly the cells round R's reserve phase
//     wrote, so the algorithm restores the array it found. Growth
//     re-initializes in full.
//   - the pending ping-pong buffers and loser lists are fully
//     (re)written before being read in every Apply call.
//
// A panic inside a caller-supplied context (not expected: bodies are
// internal) may violate the first invariant; discard the Scratch then.
type Scratch struct {
	r    []int32   // reservation priorities, all none when idle
	bufA []int32   // pending iterations (ping)
	bufB []int32   // pending iterations (pong)
	keep [][]int32 // per-chunk losers of the current round
	cur  []int32   // live pending view, read by prebound bodies
	fill func(w int, r par.Range)
}

// NewScratch returns an empty Scratch; buffers materialize on first use.
func NewScratch() *Scratch {
	sc := &Scratch{}
	sc.fill = func(_ int, r par.Range) {
		buf := sc.bufA
		for i := r.Begin; i < r.End; i++ {
			buf[i] = int32(i)
		}
	}
	return sc
}

// ensure grows the buffers for an n-element apply with p chunks. Buffers
// that already exist grow with slack, so batch runs whose input sizes
// jitter slightly don't reallocate on every small new maximum.
func (sc *Scratch) ensure(n, p int) {
	if cap(sc.r) < n {
		grown := n
		if sc.r != nil {
			grown += n / 8
		}
		sc.r = make([]int32, grown)
		for i := range sc.r {
			sc.r[i] = none
		}
	}
	if cap(sc.bufA) < n {
		sc.bufA = make([]int32, n, cap(sc.r))
	}
	if cap(sc.bufB) < n {
		sc.bufB = make([]int32, n, cap(sc.r))
	}
	sc.bufA = sc.bufA[:n]
	for len(sc.keep) < p {
		sc.keep = append(sc.keep, nil)
	}
	chunkMax := (n + p - 1) / p
	for w := 0; w < p; w++ {
		if cap(sc.keep[w]) < chunkMax {
			sc.keep[w] = make([]int32, 0, chunkMax)
		}
	}
}

//nullgraph:hotpath
func writeMin(r []int32, cell int, prio int32) {
	addr := &r[cell]
	for {
		cur := atomic.LoadInt32(addr)
		if cur <= prio {
			return
		}
		if atomic.CompareAndSwapInt32(addr, cur, prio) {
			return
		}
	}
}

// Applier executes reservation-parallel applies for one element type,
// reusing a Scratch and pre-bound phase bodies so steady-state calls do
// not allocate. Not safe for concurrent use; Appliers sharing a Scratch
// must not run concurrently with each other either.
type Applier[T any] struct {
	sc                    *Scratch
	data                  []T
	h                     []int32
	stop                  *par.Stop
	reserve, commit, rset func(w int, r par.Range)
}

// SetStop attaches (or, with nil, detaches) a cooperative stop flag.
// Apply polls it between reservation rounds — after the reset phase, so
// an abandoned apply still leaves the Scratch's reservation array
// all-none and the data partially permuted but element-complete.
func (a *Applier[T]) SetStop(stop *par.Stop) { a.stop = stop }

// NewApplier returns an applier over sc. The phase closures are
// allocated here, once, so Apply itself stays allocation-free.
func NewApplier[T any](sc *Scratch) *Applier[T] {
	a := &Applier[T]{sc: sc}
	a.reserve = func(_ int, rg par.Range) {
		cur, h, r := a.sc.cur, a.h, a.sc.r
		for k := rg.Begin; k < rg.End; k++ {
			i := cur[k]
			writeMin(r, int(i), i)
			writeMin(r, int(h[i]), i)
		}
	}
	a.commit = func(w int, rg par.Range) {
		sc := a.sc
		cur, h, r, data := sc.cur, a.h, sc.r, a.data
		keep := sc.keep[w][:0]
		for k := rg.Begin; k < rg.End; k++ {
			i := cur[k]
			j := h[i]
			if atomic.LoadInt32(&r[i]) == i && atomic.LoadInt32(&r[j]) == i {
				data[i], data[j] = data[j], data[i]
			} else {
				keep = append(keep, i)
			}
		}
		sc.keep[w] = keep
	}
	a.rset = func(_ int, rg par.Range) {
		sc := a.sc
		cur, h, r := sc.cur, a.h, sc.r
		for k := rg.Begin; k < rg.End; k++ {
			i := cur[k]
			atomic.StoreInt32(&r[i], none)
			atomic.StoreInt32(&r[h[i]], none)
		}
	}
	return a
}

// Apply permutes data according to a target array (from Targets /
// TargetsInto), choosing the serial or reservation-parallel execution by
// size. With a non-nil pool the parallel phases run on it (and p is
// ignored in favor of the pool's width); otherwise ForRange workers are
// spawned per phase. The result is bit-identical to applySerial(data, h)
// in all configurations.
func (a *Applier[T]) Apply(data []T, h []int32, p int, pool *par.Pool) {
	if len(data) != len(h) {
		panic("permute: Apply length mismatch")
	}
	n := len(data)
	if n <= 1 {
		return
	}
	if pool != nil {
		p = pool.Workers()
	} else {
		p = par.Workers(p)
	}
	if n < serialCutoff || p == 1 {
		if a.stop != nil {
			applySerialStop(data, h, a.stop)
		} else {
			applySerial(data, h)
		}
		return
	}
	a.run(data, h, p, pool)
}

// run executes the reservation algorithm: each round, every pending
// iteration i writeMin-reserves cells i and h[i]; iterations holding
// both reservations commit their swap. Priorities are iteration indices,
// so a committed iteration is one all of whose sequential predecessors
// on its cells have already committed — the final array is identical to
// applySerial(data, h).
func (a *Applier[T]) run(data []T, h []int32, p int, pool *par.Pool) {
	n := len(data)
	sc := a.sc
	sc.ensure(n, p)
	a.data, a.h = data, h

	par.Execute(pool, n, p, sc.fill)
	cur := sc.bufA[:n]
	spare := sc.bufB[:0]

	for len(cur) > 0 { //nullgraph:cancelable
		sc.cur = cur
		k := par.NumChunks(len(cur), p)
		// Phase 1: reserve. Phase 2: commit winners, collect losers
		// per chunk. Phase 3: reset reservations — only cells touched
		// this round need clearing, which restores r to all-none.
		par.Execute(pool, len(cur), p, a.reserve)
		par.Execute(pool, len(cur), p, a.commit)
		par.Execute(pool, len(cur), p, a.rset)
		spare = spare[:0]
		for w := 0; w < k; w++ {
			spare = append(spare, sc.keep[w]...)
		}
		cur, spare = spare, cur
		// Round boundary: the reset phase just restored r to all-none,
		// so abandoning here leaves the Scratch reusable.
		if a.stop.Stopped() {
			break
		}
	}
	sc.cur = nil
	a.data, a.h = nil, nil
}

// applyParallel forces the reservation-parallel execution with one-shot
// scratch; tests use it to exercise the parallel path below the serial
// cutoff.
func applyParallel[T any](data []T, h []int32, p int) {
	NewApplier[T](NewScratch()).run(data, h, par.Workers(p), nil)
}

// Apply permutes data according to a target array from Targets, choosing
// the serial or reservation-parallel execution by size. One-shot scratch;
// hot loops should hold an Applier.
func Apply[T any](data []T, h []int32, p int) {
	if len(data) != len(h) {
		panic("permute: Apply length mismatch")
	}
	if len(data) <= 1 {
		return
	}
	p = par.Workers(p)
	if len(data) < serialCutoff || p == 1 {
		applySerial(data, h)
		return
	}
	applyParallel(data, h, p)
}

// Parallel shuffles data uniformly at random with p workers, matching
// the serial inside-out shuffle on the same deterministic target array.
func Parallel[T any](seed uint64, data []T, p int) {
	n := len(data)
	if n <= 1 {
		return
	}
	p = par.Workers(p)
	h := make([]int32, n)
	targets(seed, n, p, h)
	if n < serialCutoff || p == 1 {
		applySerial(data, h)
		return
	}
	applyParallel(data, h, p)
}
