package permute

import "testing"

func TestApplyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Apply with mismatched lengths did not panic")
		}
	}()
	Apply([]int{1, 2, 3}, []int32{0}, 1)
}

func TestApplyTrivialSizes(t *testing.T) {
	// len 0 and 1 are no-ops regardless of target content.
	Apply([]int{}, []int32{}, 4)
	one := []int{42}
	Apply(one, []int32{0}, 4)
	if one[0] != 42 {
		t.Error("single-element apply changed data")
	}
}

func TestTargetsStableAcrossCalls(t *testing.T) {
	a := Targets(5, 1000, 2)
	b := Targets(5, 1000, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Targets not deterministic at %d", i)
		}
	}
}

func TestApplyConsistentAcrossArrays(t *testing.T) {
	// The use case the swap engine relies on: two arrays permuted with
	// the same targets stay aligned.
	const n = 20000
	vals := make([]int, n)
	tags := make([]uint8, n)
	for i := range vals {
		vals[i] = i
		tags[i] = uint8(i % 251)
	}
	h := Targets(9, n, 4)
	Apply(vals, h, 4)
	Apply(tags, h, 4)
	for i := range vals {
		if tags[i] != uint8(vals[i]%251) {
			t.Fatalf("arrays desynchronized at %d", i)
		}
	}
}
