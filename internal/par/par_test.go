package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d, want 4", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got < 1 {
		t.Errorf("Workers(-3) = %d, want >= 1", got)
	}
}

func TestSplitCoversRange(t *testing.T) {
	cases := []struct{ n, p int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {10, 10}, {10, 3}, {100, 7}, {5, 0},
	}
	for _, c := range cases {
		ranges := Split(c.n, c.p)
		if c.n <= 0 || c.p <= 0 {
			if ranges != nil {
				t.Errorf("Split(%d,%d) = %v, want nil", c.n, c.p, ranges)
			}
			continue
		}
		covered := 0
		prevEnd := 0
		for i, r := range ranges {
			if r.Begin != prevEnd {
				t.Errorf("Split(%d,%d): chunk %d begins at %d, want %d", c.n, c.p, i, r.Begin, prevEnd)
			}
			if r.Len() <= 0 {
				t.Errorf("Split(%d,%d): chunk %d is empty", c.n, c.p, i)
			}
			covered += r.Len()
			prevEnd = r.End
		}
		if covered != c.n {
			t.Errorf("Split(%d,%d) covers %d indices, want %d", c.n, c.p, covered, c.n)
		}
		if prevEnd != c.n {
			t.Errorf("Split(%d,%d) ends at %d, want %d", c.n, c.p, prevEnd, c.n)
		}
		if len(ranges) > c.p {
			t.Errorf("Split(%d,%d) produced %d chunks, want <= %d", c.n, c.p, len(ranges), c.p)
		}
	}
}

func TestSplitBalanced(t *testing.T) {
	ranges := Split(103, 4)
	min, max := ranges[0].Len(), ranges[0].Len()
	for _, r := range ranges {
		if r.Len() < min {
			min = r.Len()
		}
		if r.Len() > max {
			max = r.Len()
		}
	}
	if max-min > 1 {
		t.Errorf("Split(103,4): chunk sizes differ by %d, want <= 1", max-min)
	}
}

func TestSplitProperty(t *testing.T) {
	f := func(n, p uint8) bool {
		ranges := Split(int(n), int(p))
		total := 0
		for _, r := range ranges {
			total += r.Len()
		}
		if int(n) > 0 && int(p) > 0 {
			return total == int(n)
		}
		return total == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForTouchesEachIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		const n = 1000
		counts := make([]int32, n)
		For(n, p, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: index %d touched %d times, want 1", p, i, c)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	if called {
		t.Error("For(0, ...) invoked body")
	}
}

func TestForRangeWorkerIDsDistinct(t *testing.T) {
	const n = 64
	seen := make([]int32, 8)
	ForRange(n, 8, func(w int, r Range) {
		atomic.AddInt32(&seen[w], 1)
	})
	for w, c := range seen {
		if c != 1 {
			t.Errorf("worker %d ran %d chunks, want 1", w, c)
		}
	}
}

func TestSumInt64(t *testing.T) {
	for _, p := range []int{1, 4} {
		got := SumInt64(101, p, func(i int) int64 { return int64(i) })
		want := int64(100 * 101 / 2)
		if got != want {
			t.Errorf("p=%d: SumInt64 = %d, want %d", p, got, want)
		}
	}
	if got := SumInt64(0, 4, func(int) int64 { return 1 }); got != 0 {
		t.Errorf("SumInt64(0) = %d, want 0", got)
	}
}

func TestMaxInt64(t *testing.T) {
	vals := []int64{3, -7, 12, 0, 12, 5}
	got := MaxInt64(len(vals), 3, func(i int) int64 { return vals[i] })
	if got != 12 {
		t.Errorf("MaxInt64 = %d, want 12", got)
	}
	if got := MaxInt64(0, 3, func(int) int64 { return 99 }); got != 0 {
		t.Errorf("MaxInt64(0) = %d, want 0", got)
	}
	neg := []int64{-5, -2, -9}
	if got := MaxInt64(len(neg), 2, func(i int) int64 { return neg[i] }); got != -2 {
		t.Errorf("MaxInt64(neg) = %d, want -2", got)
	}
}

func TestCountIf(t *testing.T) {
	got := CountIf(100, 4, func(i int) bool { return i%3 == 0 })
	if got != 34 {
		t.Errorf("CountIf = %d, want 34", got)
	}
}

func TestPrefixSumsMatchesSerial(t *testing.T) {
	in := make([]int64, 1237)
	for i := range in {
		in[i] = int64((i*7919)%13 - 6)
	}
	for _, p := range []int{1, 2, 5, 16} {
		got := PrefixSums(in, p)
		if len(got) != len(in)+1 {
			t.Fatalf("p=%d: len = %d, want %d", p, len(got), len(in)+1)
		}
		var want int64
		for i := range in {
			if got[i] != want {
				t.Fatalf("p=%d: prefix[%d] = %d, want %d", p, i, got[i], want)
			}
			want += in[i]
		}
		if got[len(in)] != want {
			t.Fatalf("p=%d: total = %d, want %d", p, got[len(in)], want)
		}
	}
}

func TestPrefixSumsEmpty(t *testing.T) {
	got := PrefixSums(nil, 4)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("PrefixSums(nil) = %v, want [0]", got)
	}
}

func TestPrefixSumsIntoBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PrefixSumsInto with short output did not panic")
		}
	}()
	PrefixSumsInto(make([]int64, 4), make([]int64, 4), 1)
}

func TestPrefixSumsProperty(t *testing.T) {
	f := func(in []int64, p uint8) bool {
		// Bound magnitudes so sums don't overflow.
		for i := range in {
			in[i] %= 1 << 20
		}
		got := PrefixSums(in, int(p%8)+1)
		var want int64
		for i := range in {
			if got[i] != want {
				return false
			}
			want += in[i]
		}
		return got[len(in)] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
