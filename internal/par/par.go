// Package par provides the shared-memory parallel primitives used
// throughout the library: parallel loops over index ranges, parallel
// prefix sums, and reductions.
//
// The package mirrors the OpenMP constructs used by the paper
// ("parallel for", reductions, prefix sums) with goroutine worker pools.
// All functions are deterministic given a fixed worker count when the
// caller's per-index work is deterministic: ranges are split into
// contiguous chunks, one per worker, so a worker's ID fully determines
// the indices it touches.
package par

import (
	"runtime"
	"sync"
)

// Workers returns the effective worker count for a requested value.
// A request of <= 0 means "use GOMAXPROCS".
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Range describes a contiguous half-open index interval [Begin, End).
type Range struct {
	Begin int
	End   int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.End - r.Begin }

// Split partitions [0, n) into at most p contiguous, non-empty,
// near-equal ranges. It returns fewer than p ranges when n < p.
func Split(n, p int) []Range {
	if n <= 0 || p <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	ranges := make([]Range, p)
	chunk := n / p
	rem := n % p
	begin := 0
	for i := 0; i < p; i++ {
		size := chunk
		if i < rem {
			size++
		}
		ranges[i] = Range{Begin: begin, End: begin + size}
		begin += size
	}
	return ranges
}

// For runs body(i) for every i in [0, n) using p workers (p <= 0 means
// GOMAXPROCS). Each worker owns one contiguous chunk. body must be safe
// to call concurrently for distinct indices.
func For(n, p int, body func(i int)) {
	ForRange(n, p, func(_ int, r Range) {
		for i := r.Begin; i < r.End; i++ {
			body(i)
		}
	})
}

// ForRange runs body(worker, range) once per contiguous chunk of [0, n),
// with at most p concurrent workers. The worker argument is the chunk
// index in [0, len(chunks)), usable for indexing per-worker state such
// as RNG streams or partial accumulators.
func ForRange(n, p int, body func(worker int, r Range)) {
	p = Workers(p)
	ranges := Split(n, p)
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		body(0, ranges[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for w, r := range ranges {
		go func(w int, r Range) {
			defer wg.Done()
			body(w, r)
		}(w, r)
	}
	wg.Wait()
}

// SumInt64 computes the sum of f(i) over [0, n) in parallel.
func SumInt64(n, p int, f func(i int) int64) int64 {
	p = Workers(p)
	ranges := Split(n, p)
	if len(ranges) == 0 {
		return 0
	}
	partial := make([]int64, len(ranges))
	ForRange(n, p, func(w int, r Range) {
		var s int64
		for i := r.Begin; i < r.End; i++ {
			s += f(i)
		}
		partial[w] = s
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// MaxInt64 computes the maximum of f(i) over [0, n) in parallel.
// It returns 0 when n <= 0.
func MaxInt64(n, p int, f func(i int) int64) int64 {
	p = Workers(p)
	ranges := Split(n, p)
	if len(ranges) == 0 {
		return 0
	}
	partial := make([]int64, len(ranges))
	ForRange(n, p, func(w int, r Range) {
		m := f(r.Begin)
		for i := r.Begin + 1; i < r.End; i++ {
			if v := f(i); v > m {
				m = v
			}
		}
		partial[w] = m
	})
	m := partial[0]
	for _, v := range partial[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// CountIf counts indices i in [0, n) for which pred(i) holds, in parallel.
func CountIf(n, p int, pred func(i int) bool) int64 {
	return SumInt64(n, p, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// PrefixSums computes the exclusive prefix sums of in, returning a slice
// of length len(in)+1 whose element k is the sum of in[0:k]. The final
// element is the total. The computation is a classic two-pass parallel
// scan: per-chunk partial sums, a serial scan over the (few) chunk
// totals, then a per-chunk local scan with the chunk offset.
func PrefixSums(in []int64, p int) []int64 {
	out := make([]int64, len(in)+1)
	PrefixSumsInto(in, out, p)
	return out
}

// PrefixSumsInto is PrefixSums writing into a caller-provided slice of
// length len(in)+1. It panics if out has the wrong length.
func PrefixSumsInto(in []int64, out []int64, p int) {
	if len(out) != len(in)+1 {
		panic("par: PrefixSumsInto output length must be len(in)+1")
	}
	n := len(in)
	if n == 0 {
		out[0] = 0
		return
	}
	p = Workers(p)
	ranges := Split(n, p)
	partial := make([]int64, len(ranges))
	ForRange(n, p, func(w int, r Range) {
		var s int64
		for i := r.Begin; i < r.End; i++ {
			s += in[i]
		}
		partial[w] = s
	})
	// Serial exclusive scan over chunk totals: len(partial) <= p, cheap.
	var running int64
	offsets := make([]int64, len(ranges))
	for w, s := range partial {
		offsets[w] = running
		running += s
	}
	ForRange(n, p, func(w int, r Range) {
		s := offsets[w]
		for i := r.Begin; i < r.End; i++ {
			out[i] = s
			s += in[i]
		}
	})
	out[n] = running
}
