// Package par provides the shared-memory parallel primitives used
// throughout the library: parallel loops over index ranges, parallel
// prefix sums, and reductions.
//
// The package mirrors the OpenMP constructs used by the paper
// ("parallel for", reductions, prefix sums) with goroutine worker pools.
// All functions are deterministic given a fixed worker count when the
// caller's per-index work is deterministic: ranges are split into
// contiguous chunks, one per worker, so a worker's ID fully determines
// the indices it touches.
package par

import (
	"runtime"
	"sync"
)

// Workers returns the effective worker count for a requested value.
// A request of <= 0 means "use GOMAXPROCS".
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Range describes a contiguous half-open index interval [Begin, End).
type Range struct {
	Begin int
	End   int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.End - r.Begin }

// Split partitions [0, n) into at most p contiguous, non-empty,
// near-equal ranges. It returns fewer than p ranges when n < p.
func Split(n, p int) []Range {
	return SplitInto(nil, n, p)
}

// SplitInto is Split appending into dst (usually dst[:0] of a reusable
// buffer), so steady-state callers can partition without allocating.
//
//nullgraph:hotpath
func SplitInto(dst []Range, n, p int) []Range {
	if n <= 0 || p <= 0 {
		return dst
	}
	if p > n {
		p = n
	}
	chunk := n / p
	rem := n % p
	begin := 0
	for i := 0; i < p; i++ {
		size := chunk
		if i < rem {
			size++
		}
		dst = append(dst, Range{Begin: begin, End: begin + size})
		begin += size
	}
	return dst
}

// NumChunks returns the number of ranges Split(n, p) produces.
func NumChunks(n, p int) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p > n {
		return n
	}
	return p
}

// For runs body(i) for every i in [0, n) using p workers (p <= 0 means
// GOMAXPROCS). Each worker owns one contiguous chunk. body must be safe
// to call concurrently for distinct indices.
func For(n, p int, body func(i int)) {
	ForRange(n, p, func(_ int, r Range) {
		for i := r.Begin; i < r.End; i++ {
			body(i)
		}
	})
}

// ForRange runs body(worker, range) once per contiguous chunk of [0, n),
// with at most p concurrent workers. The worker argument is the chunk
// index in [0, len(chunks)), usable for indexing per-worker state such
// as RNG streams or partial accumulators.
func ForRange(n, p int, body func(worker int, r Range)) {
	p = Workers(p)
	ranges := Split(n, p)
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		body(0, ranges[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for w, r := range ranges {
		go func(w int, r Range) {
			defer wg.Done()
			body(w, r)
		}(w, r)
	}
	wg.Wait()
}

// Cell is a cache-line-padded int64 accumulator. Per-worker partials
// stored in a []Cell land on distinct cache lines, so concurrent workers
// incrementing their own cell never invalidate each other's line (false
// sharing) — measurable on reductions whose per-index work is tiny.
//
//nullgraph:padded
type Cell struct {
	V int64
	_ [56]byte // pad to 64 bytes
}

// SumInt64 computes the sum of f(i) over [0, n) in parallel.
func SumInt64(n, p int, f func(i int) int64) int64 {
	p = Workers(p)
	k := NumChunks(n, p)
	if k == 0 {
		return 0
	}
	partial := make([]Cell, k)
	ForRange(n, p, func(w int, r Range) {
		var s int64
		for i := r.Begin; i < r.End; i++ {
			s += f(i)
		}
		partial[w].V = s
	})
	var total int64
	for i := range partial {
		total += partial[i].V
	}
	return total
}

// MaxInt64 computes the maximum of f(i) over [0, n) in parallel.
// It returns 0 when n <= 0.
func MaxInt64(n, p int, f func(i int) int64) int64 {
	p = Workers(p)
	k := NumChunks(n, p)
	if k == 0 {
		return 0
	}
	partial := make([]Cell, k)
	ForRange(n, p, func(w int, r Range) {
		m := f(r.Begin)
		for i := r.Begin + 1; i < r.End; i++ {
			if v := f(i); v > m {
				m = v
			}
		}
		partial[w].V = m
	})
	m := partial[0].V
	for i := 1; i < len(partial); i++ {
		if partial[i].V > m {
			m = partial[i].V
		}
	}
	return m
}

// CountIf counts indices i in [0, n) for which pred(i) holds, in parallel.
func CountIf(n, p int, pred func(i int) bool) int64 {
	return SumInt64(n, p, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// PrefixSums computes the exclusive prefix sums of in, returning a slice
// of length len(in)+1 whose element k is the sum of in[0:k]. The final
// element is the total. The computation is a classic two-pass parallel
// scan: per-chunk partial sums, a serial scan over the (few) chunk
// totals, then a per-chunk local scan with the chunk offset.
func PrefixSums(in []int64, p int) []int64 {
	out := make([]int64, len(in)+1)
	PrefixSumsInto(in, out, p)
	return out
}

// PrefixSumsInto is PrefixSums writing into a caller-provided slice of
// length len(in)+1. It panics if out has the wrong length.
func PrefixSumsInto(in []int64, out []int64, p int) {
	if len(out) != len(in)+1 {
		panic("par: PrefixSumsInto output length must be len(in)+1")
	}
	n := len(in)
	if n == 0 {
		out[0] = 0
		return
	}
	p = Workers(p)
	k := NumChunks(n, p)
	partial := make([]Cell, k)
	ForRange(n, p, func(w int, r Range) {
		var s int64
		for i := r.Begin; i < r.End; i++ {
			s += in[i]
		}
		partial[w].V = s
	})
	// Serial exclusive scan over chunk totals: len(partial) <= p, cheap.
	var running int64
	offsets := make([]int64, k)
	for w := range partial {
		offsets[w] = running
		running += partial[w].V
	}
	ForRange(n, p, func(w int, r Range) {
		s := offsets[w]
		for i := r.Begin; i < r.End; i++ {
			out[i] = s
			s += in[i]
		}
	})
	out[n] = running
}

// Pool is a persistent team of worker goroutines executing parallel-for
// regions with zero steady-state allocations. ForRange spawns fresh
// goroutines (and allocates a closure per worker) on every call — fine
// for coarse regions, but a swap iteration dispatches dozens of small
// regions, where per-call allocation and spawn latency add up. A Pool
// parks its workers on a channel between regions and reuses its range
// buffer, so a dispatch is p channel sends, the body, and a WaitGroup
// join.
//
// A Pool is NOT safe for concurrent Run calls (one region at a time) and
// Run must not be called from inside a running body (no nesting). With
// one worker no goroutines are spawned and Run executes inline, making
// the serial path allocation- and synchronization-free.
type Pool struct {
	workers int
	ranges  []Range
	body    func(w int, r Range)
	tasks   chan int
	wg      sync.WaitGroup
	closed  bool
}

// NewPool creates a pool with Workers(workers) workers. Pools with more
// than one worker own parked goroutines; call Close when the pool is no
// longer needed so they exit. Forgetting Close leaks parked goroutines
// until process exit but no CPU.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	pl := &Pool{workers: w, ranges: make([]Range, 0, w)}
	if w > 1 {
		pl.tasks = make(chan int, w)
		for i := 0; i < w; i++ {
			go pl.worker()
		}
	}
	return pl
}

// Workers returns the pool's worker count.
func (pl *Pool) Workers() int { return pl.workers }

func (pl *Pool) worker() {
	// The channel send in Run happens-before the receive here, ordering
	// the writes to pl.body and pl.ranges; wg.Done happens-before
	// wg.Wait returning, ordering body effects with the caller.
	for w := range pl.tasks {
		pl.body(w, pl.ranges[w])
		pl.wg.Done()
	}
}

// Run executes body(worker, range) over the chunks of [0, n), exactly
// like ForRange but on the pool's persistent workers. Chunking matches
// Split(n, pl.Workers()), so worker IDs and index ownership are
// identical to ForRange with the same width.
//
//nullgraph:hotpath
func (pl *Pool) Run(n int, body func(w int, r Range)) {
	if pl.closed {
		panic("par: Run on closed Pool")
	}
	pl.ranges = SplitInto(pl.ranges[:0], n, pl.workers)
	k := len(pl.ranges)
	if k == 0 {
		return
	}
	if k == 1 || pl.tasks == nil {
		for w, r := range pl.ranges {
			body(w, r)
		}
		return
	}
	pl.body = body
	pl.wg.Add(k)
	for w := 0; w < k; w++ {
		pl.tasks <- w
	}
	pl.wg.Wait()
	pl.body = nil
}

// Close releases the pool's worker goroutines. The pool must be idle;
// Run panics after Close. Close is idempotent.
func (pl *Pool) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	if pl.tasks != nil {
		close(pl.tasks)
	}
}

// Execute runs body over [0, n) on pl when pl is non-nil, else via
// ForRange with p workers. It lets scratch-reusing code (permute's
// Applier, the swap engines) accept an optional pool without forcing
// every caller to own one.
//
//nullgraph:hotpath
func Execute(pl *Pool, n, p int, body func(w int, r Range)) {
	if pl != nil {
		pl.Run(n, body)
		return
	}
	ForRange(n, p, body)
}
