package par

import (
	"sync/atomic"
	"testing"
)

func TestSplitIntoMatchesSplitAndReusesBuffer(t *testing.T) {
	buf := make([]Range, 0, 16)
	for _, n := range []int{0, 1, 5, 100, 101} {
		for _, p := range []int{1, 3, 8, 200} {
			want := Split(n, p)
			got := SplitInto(buf[:0], n, p)
			if len(got) != len(want) {
				t.Fatalf("n=%d p=%d: %d ranges, want %d", n, p, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: range %d = %+v, want %+v", n, p, i, got[i], want[i])
				}
			}
			if NumChunks(n, p) != len(want) {
				t.Fatalf("NumChunks(%d,%d) = %d, want %d", n, p, NumChunks(n, p), len(want))
			}
		}
	}
}

// TestPoolMatchesForRange: identical chunking, worker IDs and coverage
// between the persistent pool and per-call goroutines.
func TestPoolMatchesForRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		pool := NewPool(workers)
		for _, n := range []int{0, 1, workers - 1, workers, 1000} {
			if n < 0 {
				continue
			}
			gotCover := make([]int32, n)
			gotOwner := make([]int32, n)
			pool.Run(n, func(w int, r Range) {
				for i := r.Begin; i < r.End; i++ {
					atomic.AddInt32(&gotCover[i], 1)
					gotOwner[i] = int32(w)
				}
			})
			wantOwner := make([]int32, n)
			ForRange(n, workers, func(w int, r Range) {
				for i := r.Begin; i < r.End; i++ {
					wantOwner[i] = int32(w)
				}
			})
			for i := 0; i < n; i++ {
				if gotCover[i] != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, gotCover[i])
				}
				if gotOwner[i] != wantOwner[i] {
					t.Fatalf("workers=%d n=%d: index %d owned by %d, ForRange gives %d",
						workers, n, i, gotOwner[i], wantOwner[i])
				}
			}
		}
		pool.Close()
	}
}

func TestPoolReuseAcrossManyRuns(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var total int64
	for round := 0; round < 200; round++ {
		pool.Run(100, func(_ int, r Range) {
			atomic.AddInt64(&total, int64(r.Len()))
		})
	}
	if total != 200*100 {
		t.Fatalf("covered %d indices over 200 runs, want %d", total, 200*100)
	}
}

func TestPoolSerialRunsInline(t *testing.T) {
	// A 1-worker pool must execute on the calling goroutine (no spawned
	// workers), so body-side state needs no synchronization.
	pool := NewPool(1)
	defer pool.Close()
	sum := 0
	pool.Run(10, func(w int, r Range) {
		if w != 0 {
			t.Fatalf("serial pool used worker %d", w)
		}
		for i := r.Begin; i < r.End; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestPoolRunAfterClosePanics(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	pool.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Run on closed pool did not panic")
		}
	}()
	pool.Run(1, func(int, Range) {})
}

func TestExecuteWithAndWithoutPool(t *testing.T) {
	var total int64
	Execute(nil, 100, 4, func(_ int, r Range) {
		atomic.AddInt64(&total, int64(r.Len()))
	})
	if total != 100 {
		t.Fatalf("nil-pool Execute covered %d, want 100", total)
	}
	pool := NewPool(4)
	defer pool.Close()
	total = 0
	Execute(pool, 100, 1 /* ignored in favor of pool width */, func(_ int, r Range) {
		atomic.AddInt64(&total, int64(r.Len()))
	})
	if total != 100 {
		t.Fatalf("pool Execute covered %d, want 100", total)
	}
}

// TestPoolRunDoesNotAllocate: dispatch on a warm pool stays off the
// heap — the property the swap hot path depends on.
func TestPoolRunDoesNotAllocate(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pool := NewPool(workers)
		body := func(_ int, r Range) {
			for i := r.Begin; i < r.End; i++ {
				_ = i
			}
		}
		pool.Run(1000, body) // warm-up
		if allocs := testing.AllocsPerRun(10, func() { pool.Run(1000, body) }); allocs != 0 {
			t.Errorf("workers=%d: Run allocated %v per dispatch, want 0", workers, allocs)
		}
		pool.Close()
	}
}
