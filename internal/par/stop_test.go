package par

import (
	"context"
	"testing"
	"time"
)

func TestStopNilSafe(t *testing.T) {
	var s *Stop
	if s.Stopped() {
		t.Fatal("nil Stop reported stopped")
	}
}

func TestStopSet(t *testing.T) {
	s := &Stop{}
	if s.Stopped() {
		t.Fatal("fresh Stop reported stopped")
	}
	s.Set()
	if !s.Stopped() {
		t.Fatal("Set did not trip the flag")
	}
	s.Set() // idempotent
	if !s.Stopped() {
		t.Fatal("second Set untripped the flag")
	}
}

// TestWatchContextUncancelable: nil and never-canceled contexts must
// yield a nil Stop — the zero-cost fast path the hot loops rely on.
func TestWatchContextUncancelable(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background(), context.TODO()} {
		stop, release := WatchContext(ctx)
		if stop != nil {
			t.Fatalf("uncancelable ctx %v produced a non-nil Stop", ctx)
		}
		release() // must be callable
	}
}

func TestWatchContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stop, release := WatchContext(ctx)
	defer release()
	if !stop.Stopped() {
		t.Fatal("pre-canceled ctx produced an untripped Stop")
	}
}

func TestWatchContextTripsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	stop, release := WatchContext(ctx)
	defer release()
	if stop.Stopped() {
		t.Fatal("Stop tripped before cancel")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !stop.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("Stop did not trip within 5s of cancel")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchContextRelease: releasing before cancel must reclaim the
// watcher without tripping the flag.
func TestWatchContextRelease(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop, release := WatchContext(ctx)
	release()
	cancel()
	time.Sleep(10 * time.Millisecond)
	// The flag may or may not trip depending on which select branch won;
	// the guarantee is only that release is safe and non-blocking. This
	// test is primarily a leak/race check under -race.
	_ = stop.Stopped()
}
