package par

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrStopped is the sentinel returned by pipeline stages that observed a
// tripped Stop flag and abandoned their work cooperatively. Callers at
// the public API boundary translate it into the context's error.
var ErrStopped = errors.New("par: run stopped")

// Stop is a cooperative cancellation flag shared by every stage of a
// pipeline run. Loop bodies poll Stopped at coarse intervals (every few
// thousand iterations, or between phases) and bail out early when it
// trips; they never consume randomness on the polling path, so an
// uncanceled run is bit-identical whether or not a Stop is attached.
//
// A nil *Stop is valid and never stops, letting hot paths keep a single
// nil-check instead of branching on configuration.
type Stop struct {
	flag atomic.Bool
}

// Set trips the flag. Safe to call concurrently and more than once.
func (s *Stop) Set() { s.flag.Store(true) }

// Stopped reports whether the flag has been tripped. Nil-safe: a nil
// receiver always reports false.
func (s *Stop) Stopped() bool {
	return s != nil && s.flag.Load()
}

// WatchContext bridges a context.Context to a Stop flag. It returns a
// Stop that trips when ctx is canceled, and a release function the
// caller must invoke (typically via defer) to reclaim the watcher
// goroutine once the run completes.
//
// Contexts that can never be canceled — nil, context.Background(),
// context.TODO(), or any ctx with a nil Done channel — yield a nil Stop
// and a no-op release, so the uncancelable path costs nothing: no
// goroutine, no atomic traffic beyond nil checks.
func WatchContext(ctx context.Context) (stop *Stop, release func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	stop = &Stop{}
	if ctx.Err() != nil {
		stop.Set()
		return stop, func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Set()
		case <-quit:
		}
	}()
	return stop, func() { close(quit) }
}
