package hashtable

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nullgraph/internal/rng"
)

func TestTestAndSetBasic(t *testing.T) {
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(16, probing)
		if s.TestAndSet(42) {
			t.Error("fresh key reported present")
		}
		if !s.TestAndSet(42) {
			t.Error("inserted key reported absent")
		}
		if s.Len() != 1 {
			t.Errorf("Len = %d, want 1", s.Len())
		}
	}
}

func TestZeroKey(t *testing.T) {
	// Key 0 is the packed (0,0) edge; it must be storable despite the
	// empty-slot sentinel.
	s := New(4, Linear)
	if s.Contains(0) {
		t.Error("empty table contains key 0")
	}
	if s.TestAndSet(0) {
		t.Error("fresh key 0 reported present")
	}
	if !s.Contains(0) || !s.TestAndSet(0) {
		t.Error("key 0 lost after insertion")
	}
}

func TestContainsDoesNotInsert(t *testing.T) {
	s := New(8, Linear)
	if s.Contains(7) {
		t.Error("phantom key")
	}
	if s.Len() != 0 {
		t.Error("Contains inserted")
	}
}

func TestSetSemanticsMatchMap(t *testing.T) {
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(512, probing)
		ref := map[uint64]bool{}
		r := rng.New(99)
		for i := 0; i < 500; i++ {
			// Small key space forces repeats.
			key := r.Uint64n(200)
			wantPresent := ref[key]
			if got := s.TestAndSet(key); got != wantPresent {
				t.Fatalf("probing=%v: TestAndSet(%d) = %v, want %v", probing, key, got, wantPresent)
			}
			ref[key] = true
		}
		if s.Len() != len(ref) {
			t.Errorf("probing=%v: Len = %d, want %d", probing, s.Len(), len(ref))
		}
		for key := range ref {
			if !s.Contains(key) {
				t.Errorf("probing=%v: lost key %d", probing, key)
			}
		}
	}
}

func TestSetSemanticsProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		s := New(len(keys)+1, Quadratic)
		ref := map[uint64]bool{}
		for _, k16 := range keys {
			k := uint64(k16)
			if s.TestAndSet(k) != ref[k] {
				return false
			}
			ref[k] = true
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInsertExactlyOneWinner(t *testing.T) {
	// Many goroutines race to insert the same keys; for each key exactly
	// one TestAndSet must return false (the insert).
	for _, probing := range []Probing{Linear, Quadratic} {
		const keys = 2000
		const workers = 8
		s := New(keys, probing)
		inserts := make([]int64, keys)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rng.New(uint64(w))
				order := make([]int, keys)
				r.Perm(order)
				for _, k := range order {
					if !s.TestAndSet(uint64(k)) {
						atomic.AddInt64(&inserts[k], 1)
					}
				}
			}(w)
		}
		wg.Wait()
		for k, c := range inserts {
			if c != 1 {
				t.Fatalf("probing=%v: key %d inserted %d times, want exactly 1", probing, k, c)
			}
		}
		if s.Len() != keys {
			t.Errorf("probing=%v: Len = %d, want %d", probing, s.Len(), keys)
		}
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	const perWorker = 5000
	const workers = 8
	s := New(perWorker*workers, Linear)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := uint64(w*perWorker + i)
				if s.TestAndSet(key) {
					t.Errorf("fresh disjoint key %d reported present", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != perWorker*workers {
		t.Errorf("Len = %d, want %d", s.Len(), perWorker*workers)
	}
}

func TestClear(t *testing.T) {
	s := New(100, Quadratic)
	for k := uint64(0); k < 100; k++ {
		s.TestAndSet(k)
	}
	s.Clear(4)
	if s.Len() != 0 {
		t.Errorf("Len after Clear = %d", s.Len())
	}
	for k := uint64(0); k < 100; k++ {
		if s.Contains(k) {
			t.Fatalf("key %d survived Clear", k)
		}
	}
	// Table is reusable after Clear.
	if s.TestAndSet(5) {
		t.Error("reinsert after Clear reported present")
	}
}

func TestCapacity(t *testing.T) {
	s := New(100, Linear)
	if s.Capacity() < 100 {
		t.Errorf("Capacity = %d, want >= 100", s.Capacity())
	}
	// Load stays sane right up to capacity.
	for k := 0; k < s.Capacity(); k++ {
		s.TestAndSet(uint64(k) * 1000003)
	}
	if s.Len() != s.Capacity() {
		t.Errorf("Len = %d, want %d", s.Len(), s.Capacity())
	}
}

func TestTinyCapacity(t *testing.T) {
	s := New(0, Linear) // clamps to 1
	if s.TestAndSet(9) {
		t.Error("fresh key present in tiny table")
	}
	if !s.Contains(9) {
		t.Error("tiny table lost its key")
	}
}

func TestAdversarialSameBucketKeys(t *testing.T) {
	// Dense sequential keys hash arbitrarily, but with a near-full table
	// every probe sequence gets exercised. Fill to max load and verify
	// membership for both probing strategies.
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(64, probing)
		n := s.Capacity()
		for k := 0; k < n; k++ {
			if s.TestAndSet(uint64(k)) {
				t.Fatalf("probing=%v: duplicate on fresh key %d", probing, k)
			}
		}
		for k := 0; k < n; k++ {
			if !s.Contains(uint64(k)) {
				t.Fatalf("probing=%v: key %d missing at full load", probing, k)
			}
		}
		for k := n; k < 2*n; k++ {
			if s.Contains(uint64(k)) {
				t.Fatalf("probing=%v: phantom key %d", probing, k)
			}
		}
	}
}

func TestOverfullPanics(t *testing.T) {
	// New(1) has 2 slots and Capacity 1. The plain (counter-free) path
	// detects overload only when a probe sequence exhausts the table:
	// inserts 2 and 3 violate the load contract, but only insert 3 —
	// with no empty slot left anywhere — can be detected and must panic
	// rather than probe forever.
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(1, probing)
		s.TestAndSet(10)
		s.TestAndSet(20) // past capacity; plain path cannot see it yet
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("probing=%v: insert into full table did not panic", probing)
				}
			}()
			s.TestAndSet(30)
		}()
	}
}

func TestWriterOverCapacityPanics(t *testing.T) {
	// The Writer path enforces the documented <= 50% load limit
	// deterministically at the quiescent check, long before the table
	// is physically full.
	s := New(4, Linear)
	ws := s.NewWriters(1, 8)
	for k := uint64(0); k <= uint64(s.Capacity()); k++ {
		ws[0].TestAndSet(k * 7919)
	}
	defer func() {
		if recover() == nil {
			t.Error("CheckLoad accepted more inserts than Capacity")
		}
	}()
	s.CheckLoad(ws)
}

func TestWriterSemanticsMatchMap(t *testing.T) {
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(512, probing)
		ws := s.NewWriters(1, 512)
		w := ws[0]
		ref := map[uint64]bool{}
		r := rng.New(41)
		for i := 0; i < 500; i++ {
			key := r.Uint64n(300)
			if got := w.TestAndSet(key); got != ref[key] {
				t.Fatalf("probing=%v: Writer.TestAndSet(%d) = %v, want %v", probing, key, got, ref[key])
			}
			ref[key] = true
		}
		if w.Inserts() != len(ref) {
			t.Errorf("probing=%v: Inserts = %d, want %d", probing, w.Inserts(), len(ref))
		}
		if s.Len() != len(ref) {
			t.Errorf("probing=%v: Len = %d, want %d", probing, s.Len(), len(ref))
		}
	}
}

func TestJournaledClearGenerations(t *testing.T) {
	// Many insert/clear generations on one table: after every
	// ClearJournaled the table must be empty (Contains false for all
	// prior keys) and behave exactly like a fresh table — the analog of
	// epoch-rollover safety for the journal design, where nothing ages
	// or wraps no matter how many generations run.
	for _, probing := range []Probing{Linear, Quadratic} {
		// Table far larger than the per-generation key count, so the
		// adaptive ClearWriters takes the journaled (scattered) path.
		s := New(4096, probing)
		ws := s.NewWriters(4, 64)
		r := rng.New(7)
		for gen := 0; gen < 200; gen++ {
			ref := map[uint64]bool{}
			for i := 0; i < 200; i++ {
				key := r.Uint64n(180)
				w := ws[i%len(ws)]
				if got := w.TestAndSet(key); got != ref[key] {
					t.Fatalf("probing=%v gen %d: TestAndSet(%d) = %v, want %v", probing, gen, key, got, ref[key])
				}
				ref[key] = true
			}
			for key := range ref {
				if !s.Contains(key) {
					t.Fatalf("probing=%v gen %d: lost key %d", probing, gen, key)
				}
			}
			s.ClearWriters(ws, 2)
			if got := s.Len(); got != 0 {
				t.Fatalf("probing=%v gen %d: Len after clear = %d", probing, gen, got)
			}
			for key := range ref {
				if s.Contains(key) {
					t.Fatalf("probing=%v gen %d: key %d survived clear", probing, gen, key)
				}
			}
			for _, w := range ws {
				if w.Inserts() != 0 {
					t.Fatalf("probing=%v gen %d: journal not reset", probing, gen)
				}
			}
		}
	}
}

func TestWriterConcurrentStressAcrossGenerations(t *testing.T) {
	// -race stress: concurrent writers race on overlapping key sets,
	// then the table is journal-cleared and the next generation starts.
	// For every key of every generation exactly one writer may win the
	// insert.
	const workers = 8
	const keys = 1500
	const generations = 6
	s := New(keys*40, Quadratic) // sparse: clears go through the journals
	ws := s.NewWriters(workers, keys)
	for gen := 0; gen < generations; gen++ {
		inserts := make([]int64, keys)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rng.New(uint64(gen*workers + w))
				order := make([]int, keys)
				r.Perm(order)
				for _, k := range order {
					if !ws[w].TestAndSet(uint64(k) * 2654435761) {
						atomic.AddInt64(&inserts[k], 1)
					}
				}
			}(w)
		}
		wg.Wait()
		for k, c := range inserts {
			if c != 1 {
				t.Fatalf("gen %d: key %d inserted %d times, want exactly 1", gen, k, c)
			}
		}
		s.ClearWriters(ws, workers)
		if got := s.Len(); got != 0 {
			t.Fatalf("gen %d: Len after clear = %d", gen, got)
		}
	}
}

func TestJournaledAndFullClearInterop(t *testing.T) {
	// A full-sweep Clear leaves stale entries in writer journals (slots
	// already zeroed); a subsequent ClearTouched must be harmless, and
	// the journals must be reset before the next generation to keep the
	// load accounting meaningful.
	s := New(64, Linear)
	ws := s.NewWriters(2, 32)
	ws[0].TestAndSet(1)
	ws[1].TestAndSet(2)
	s.Clear(1)
	for _, w := range ws {
		w.ClearTouched() // zeroes already-zero slots; resets journal
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after clears", s.Len())
	}
	if ws[0].TestAndSet(1) || ws[1].TestAndSet(2) {
		t.Error("keys present after both clear styles")
	}
}

func TestCountingWritersSweepClear(t *testing.T) {
	// Counting-only writers: accounting without journals; ClearWriters
	// must fall back to the full sweep, and direct ClearTouched is a
	// contract violation.
	s := New(64, Linear)
	ws := s.NewCountingWriters(2)
	for k := uint64(0); k < 40; k++ {
		ws[int(k)%2].TestAndSet(k * 977)
	}
	if got := ws[0].Inserts() + ws[1].Inserts(); got != 40 {
		t.Fatalf("counted %d inserts, want 40", got)
	}
	if ws[0].Journaling() {
		t.Error("counting writer claims to journal")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ClearTouched on counting writer did not panic")
			}
		}()
		ws[0].ClearTouched()
	}()
	s.ClearWriters(ws, 2)
	if s.Len() != 0 {
		t.Errorf("Len after sweep clear = %d", s.Len())
	}
	if ws[0].Inserts() != 0 || ws[1].Inserts() != 0 {
		t.Error("counters not reset by ClearWriters")
	}
}

func TestClearWritersDensePicksSweep(t *testing.T) {
	// Journaling writers above the crossover occupancy: ClearWriters
	// must still empty the table and reset the journals (via the sweep).
	s := New(32, Quadratic)
	ws := s.NewWriters(2, 32)
	for k := uint64(0); k < 30; k++ { // ~47% of slots occupied
		ws[int(k)%2].TestAndSet(k * 7919)
	}
	s.ClearWriters(ws, 1)
	if s.Len() != 0 {
		t.Errorf("Len after dense clear = %d", s.Len())
	}
	for _, w := range ws {
		if w.Inserts() != 0 {
			t.Error("writer not reset after dense clear")
		}
	}
	if s.TestAndSet(7919) {
		t.Error("cleared key still present")
	}
}

func TestTestAndSetProbedMatchesPlain(t *testing.T) {
	// Probed and plain insertion must agree on set semantics; probe
	// counts must be >= 1, equal 1 on an uncontended first-probe hit,
	// and exceed 1 for a key whose home slot is occupied by another key.
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(64, probing)
		ws := s.NewCountingWriters(1)
		ref := New(64, probing)
		rws := ref.NewCountingWriters(1)
		for k := uint64(0); k < uint64(s.Capacity()); k++ {
			key := k * 0x9e3779b9
			present, probes := ws[0].TestAndSetProbed(key)
			if probes < 1 {
				t.Fatalf("probing=%v: probe count %d < 1", probing, probes)
			}
			if want := rws[0].TestAndSet(key); present != want {
				t.Fatalf("probing=%v: probed insert of %d = %v, plain = %v", probing, key, present, want)
			}
		}
		if ws[0].Inserts() != rws[0].Inserts() {
			t.Fatalf("probing=%v: probed writer counted %d inserts, plain %d",
				probing, ws[0].Inserts(), rws[0].Inserts())
		}
		// Re-testing a present key still reports its probe cost.
		present, probes := ws[0].TestAndSetProbed(0)
		if !present || probes < 1 {
			t.Errorf("probing=%v: re-test of present key = (%v, %d)", probing, present, probes)
		}
	}
}

func TestTestAndSetProbedCollisionCost(t *testing.T) {
	// Force a collision: fill every slot but one, then insert a fresh
	// key — its probe sequence must visit more than one slot whenever
	// its home slot is taken.
	s := New(2, Linear) // 4 slots
	ws := s.NewCountingWriters(1)
	longest := 0
	for k := uint64(0); k < 2; k++ {
		_, probes := ws[0].TestAndSetProbed(k)
		if probes > longest {
			longest = probes
		}
	}
	// Two keys into four slots: at least possible, and the histogram
	// input is bounded by the table size.
	if longest > s.NumSlots() {
		t.Errorf("probe count %d exceeds slot count %d", longest, s.NumSlots())
	}
}

func TestStringDescribesOccupancy(t *testing.T) {
	s := New(4, Linear)
	s.TestAndSet(1)
	s.TestAndSet(2)
	got := s.String()
	if got == "" || s.Len() != 2 {
		t.Errorf("String() = %q, Len = %d", got, s.Len())
	}
}

func BenchmarkTestAndSetLinear(b *testing.B)    { benchInsert(b, Linear) }
func BenchmarkTestAndSetQuadratic(b *testing.B) { benchInsert(b, Quadratic) }

// Clear-strategy ablation (DESIGN.md "Versioned edge table"): full
// O(slots) sweep vs journaled O(inserted) clear at swap-engine load
// (table sized for 2m inserts, m actually performed — the engine's
// steady state once most proposals are rejected or not yet attempted).
// Measured outcome: the sweep's streaming stores win by ~8x at this
// ~25% occupancy — the sweep costs ~0.55 ns/slot, the journal's
// scattered stores ~18 ns/insert — which is why ClearWriters only takes
// the journal path below ~1/32 occupancy and the swap engines use
// counting-only writers.
func BenchmarkClearFullSweep(b *testing.B) {
	const m = 1 << 20
	s := New(2*m, Linear)
	keys := make([]uint64, m)
	r := rng.New(3)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, k := range keys {
			s.TestAndSet(k)
		}
		b.StartTimer()
		s.Clear(0)
	}
}

func BenchmarkClearJournaled(b *testing.B) {
	const m = 1 << 20
	s := New(2*m, Linear)
	ws := s.NewWriters(1, m)
	keys := make([]uint64, m)
	r := rng.New(3)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, k := range keys {
			ws[0].TestAndSet(k)
		}
		b.StartTimer()
		ws[0].ClearTouched() // force the journal path: this measures the strategy itself
	}
}

func benchInsert(b *testing.B, probing Probing) {
	s := New(b.N+1, probing)
	r := rng.New(1)
	keys := make([]uint64, b.N)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TestAndSet(keys[i])
	}
}
