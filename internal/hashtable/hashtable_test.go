package hashtable

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nullgraph/internal/rng"
)

func TestTestAndSetBasic(t *testing.T) {
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(16, probing)
		if s.TestAndSet(42) {
			t.Error("fresh key reported present")
		}
		if !s.TestAndSet(42) {
			t.Error("inserted key reported absent")
		}
		if s.Len() != 1 {
			t.Errorf("Len = %d, want 1", s.Len())
		}
	}
}

func TestZeroKey(t *testing.T) {
	// Key 0 is the packed (0,0) edge; it must be storable despite the
	// empty-slot sentinel.
	s := New(4, Linear)
	if s.Contains(0) {
		t.Error("empty table contains key 0")
	}
	if s.TestAndSet(0) {
		t.Error("fresh key 0 reported present")
	}
	if !s.Contains(0) || !s.TestAndSet(0) {
		t.Error("key 0 lost after insertion")
	}
}

func TestContainsDoesNotInsert(t *testing.T) {
	s := New(8, Linear)
	if s.Contains(7) {
		t.Error("phantom key")
	}
	if s.Len() != 0 {
		t.Error("Contains inserted")
	}
}

func TestSetSemanticsMatchMap(t *testing.T) {
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(512, probing)
		ref := map[uint64]bool{}
		r := rng.New(99)
		for i := 0; i < 500; i++ {
			// Small key space forces repeats.
			key := r.Uint64n(200)
			wantPresent := ref[key]
			if got := s.TestAndSet(key); got != wantPresent {
				t.Fatalf("probing=%v: TestAndSet(%d) = %v, want %v", probing, key, got, wantPresent)
			}
			ref[key] = true
		}
		if s.Len() != len(ref) {
			t.Errorf("probing=%v: Len = %d, want %d", probing, s.Len(), len(ref))
		}
		for key := range ref {
			if !s.Contains(key) {
				t.Errorf("probing=%v: lost key %d", probing, key)
			}
		}
	}
}

func TestSetSemanticsProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		s := New(len(keys)+1, Quadratic)
		ref := map[uint64]bool{}
		for _, k16 := range keys {
			k := uint64(k16)
			if s.TestAndSet(k) != ref[k] {
				return false
			}
			ref[k] = true
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInsertExactlyOneWinner(t *testing.T) {
	// Many goroutines race to insert the same keys; for each key exactly
	// one TestAndSet must return false (the insert).
	for _, probing := range []Probing{Linear, Quadratic} {
		const keys = 2000
		const workers = 8
		s := New(keys, probing)
		inserts := make([]int64, keys)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rng.New(uint64(w))
				order := make([]int, keys)
				r.Perm(order)
				for _, k := range order {
					if !s.TestAndSet(uint64(k)) {
						atomic.AddInt64(&inserts[k], 1)
					}
				}
			}(w)
		}
		wg.Wait()
		for k, c := range inserts {
			if c != 1 {
				t.Fatalf("probing=%v: key %d inserted %d times, want exactly 1", probing, k, c)
			}
		}
		if s.Len() != keys {
			t.Errorf("probing=%v: Len = %d, want %d", probing, s.Len(), keys)
		}
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	const perWorker = 5000
	const workers = 8
	s := New(perWorker*workers, Linear)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := uint64(w*perWorker + i)
				if s.TestAndSet(key) {
					t.Errorf("fresh disjoint key %d reported present", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != perWorker*workers {
		t.Errorf("Len = %d, want %d", s.Len(), perWorker*workers)
	}
}

func TestClear(t *testing.T) {
	s := New(100, Quadratic)
	for k := uint64(0); k < 100; k++ {
		s.TestAndSet(k)
	}
	s.Clear(4)
	if s.Len() != 0 {
		t.Errorf("Len after Clear = %d", s.Len())
	}
	for k := uint64(0); k < 100; k++ {
		if s.Contains(k) {
			t.Fatalf("key %d survived Clear", k)
		}
	}
	// Table is reusable after Clear.
	if s.TestAndSet(5) {
		t.Error("reinsert after Clear reported present")
	}
}

func TestCapacity(t *testing.T) {
	s := New(100, Linear)
	if s.Capacity() < 100 {
		t.Errorf("Capacity = %d, want >= 100", s.Capacity())
	}
	// Load stays sane right up to capacity.
	for k := 0; k < s.Capacity(); k++ {
		s.TestAndSet(uint64(k) * 1000003)
	}
	if s.Len() != s.Capacity() {
		t.Errorf("Len = %d, want %d", s.Len(), s.Capacity())
	}
}

func TestTinyCapacity(t *testing.T) {
	s := New(0, Linear) // clamps to 1
	if s.TestAndSet(9) {
		t.Error("fresh key present in tiny table")
	}
	if !s.Contains(9) {
		t.Error("tiny table lost its key")
	}
}

func TestAdversarialSameBucketKeys(t *testing.T) {
	// Dense sequential keys hash arbitrarily, but with a near-full table
	// every probe sequence gets exercised. Fill to max load and verify
	// membership for both probing strategies.
	for _, probing := range []Probing{Linear, Quadratic} {
		s := New(64, probing)
		n := s.Capacity()
		for k := 0; k < n; k++ {
			if s.TestAndSet(uint64(k)) {
				t.Fatalf("probing=%v: duplicate on fresh key %d", probing, k)
			}
		}
		for k := 0; k < n; k++ {
			if !s.Contains(uint64(k)) {
				t.Fatalf("probing=%v: key %d missing at full load", probing, k)
			}
		}
		for k := n; k < 2*n; k++ {
			if s.Contains(uint64(k)) {
				t.Fatalf("probing=%v: phantom key %d", probing, k)
			}
		}
	}
}

func TestOverfullPanics(t *testing.T) {
	// New(1) has 2 slots; the size guard fires once Len exceeds
	// slots-1, i.e. on the second distinct insertion.
	s := New(1, Linear)
	s.TestAndSet(10)
	defer func() {
		if recover() == nil {
			t.Error("overfull table did not panic")
		}
	}()
	s.TestAndSet(20)
}

func TestStringDescribesOccupancy(t *testing.T) {
	s := New(4, Linear)
	s.TestAndSet(1)
	s.TestAndSet(2)
	got := s.String()
	if got == "" || s.Len() != 2 {
		t.Errorf("String() = %q, Len = %d", got, s.Len())
	}
}

func BenchmarkTestAndSetLinear(b *testing.B)    { benchInsert(b, Linear) }
func BenchmarkTestAndSetQuadratic(b *testing.B) { benchInsert(b, Quadratic) }

func benchInsert(b *testing.B, probing Probing) {
	s := New(b.N+1, probing)
	r := rng.New(1)
	keys := make([]uint64, b.N)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TestAndSet(keys[i])
	}
}
