// Package hashtable implements the concurrent open-addressing edge set
// from the paper (adapted from Slota et al. [33]): packed 64-bit edge
// keys, one atomic compare-and-swap per insertion in the common case,
// and linear or quadratic probing on collision.
//
// The table supports only TestAndSet (insert-if-absent), Contains, and
// Clear — exactly the operations double-edge swapping needs. There is no
// deletion: the swap loop rebuilds/clears the table every iteration.
package hashtable

import (
	"fmt"
	"sync/atomic"

	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// Probing selects the collision-resolution sequence.
type Probing int

const (
	// Linear probing: slot, slot+1, slot+2, ...
	Linear Probing = iota
	// Quadratic probing: slot, slot+1, slot+3, slot+6, ... (triangular
	// increments, which visit every slot of a power-of-two table).
	Quadratic
)

// EdgeSet is a fixed-capacity concurrent set of uint64 keys. Safe for
// concurrent TestAndSet/Contains; Clear must not race with writers.
//
// Slot encoding: 0 = empty, otherwise key+1 (vertex IDs are int32, so
// key+1 never wraps).
type EdgeSet struct {
	slots   []uint64
	mask    uint64
	probing Probing
	size    atomic.Int64
}

// New creates a set able to hold capacity keys at ~50% max load.
// The slot count is the next power of two >= 2*capacity.
func New(capacity int, probing Probing) *EdgeSet {
	if capacity < 1 {
		capacity = 1
	}
	n := uint64(1)
	for n < 2*uint64(capacity) {
		n <<= 1
	}
	return &EdgeSet{slots: make([]uint64, n), mask: n - 1, probing: probing}
}

// Capacity returns the maximum number of keys the set accepts.
func (s *EdgeSet) Capacity() int { return len(s.slots) / 2 }

// Len returns the current number of stored keys.
func (s *EdgeSet) Len() int { return int(s.size.Load()) }

// TestAndSet inserts key if absent. It returns true if the key was
// already present ("test" hit) and false if this call inserted it —
// matching the paper's TestAndSet return convention in Algorithm III.1.
//
// It panics if the table is past its load limit; callers size the table
// for the worst-case insertion count of one swap iteration (2m).
func (s *EdgeSet) TestAndSet(key uint64) bool {
	stored := key + 1
	slot := rng.Mix64(key) & s.mask
	for step := uint64(1); ; step++ {
		cur := atomic.LoadUint64(&s.slots[slot])
		if cur == stored {
			return true
		}
		if cur == 0 {
			if atomic.CompareAndSwapUint64(&s.slots[slot], 0, stored) {
				if s.size.Add(1) > int64(len(s.slots))-1 {
					panic("hashtable: EdgeSet overfull")
				}
				return false
			}
			// Collision: another thread claimed this slot between the
			// load and the CAS. Re-examine the same slot — it may now
			// hold our key.
			cur = atomic.LoadUint64(&s.slots[slot])
			if cur == stored {
				return true
			}
		}
		if step > uint64(len(s.slots)) {
			panic("hashtable: probe sequence exhausted (table full)")
		}
		slot = s.next(slot, step)
	}
}

// Contains reports whether key is present, without inserting.
func (s *EdgeSet) Contains(key uint64) bool {
	stored := key + 1
	slot := rng.Mix64(key) & s.mask
	for step := uint64(1); ; step++ {
		cur := atomic.LoadUint64(&s.slots[slot])
		if cur == stored {
			return true
		}
		if cur == 0 {
			return false
		}
		if step > uint64(len(s.slots)) {
			return false
		}
		slot = s.next(slot, step)
	}
}

// next advances the probe sequence. step counts completed probes.
func (s *EdgeSet) next(slot, step uint64) uint64 {
	if s.probing == Quadratic {
		return (slot + step) & s.mask // triangular: cumulative +1,+2,+3...
	}
	return (slot + 1) & s.mask
}

// Clear empties the set in parallel with p workers. Not safe to run
// concurrently with TestAndSet/Contains.
func (s *EdgeSet) Clear(p int) {
	par.ForRange(len(s.slots), p, func(_ int, r par.Range) {
		clear(s.slots[r.Begin:r.End])
	})
	s.size.Store(0)
}

// String describes the table occupancy; used in debug logs.
func (s *EdgeSet) String() string {
	return fmt.Sprintf("EdgeSet{slots=%d, size=%d}", len(s.slots), s.Len())
}
