// Package hashtable implements the concurrent open-addressing edge set
// from the paper (adapted from Slota et al. [33]): packed 64-bit edge
// keys, one atomic compare-and-swap per insertion in the common case,
// and linear or quadratic probing on collision.
//
// The table supports only TestAndSet (insert-if-absent), Contains, and
// clearing — exactly the operations double-edge swapping needs. There is
// no deletion: the swap loop rebuilds/clears the table every iteration.
//
// # Insert accounting
//
// The table itself has no size counter: a shared atomic incremented by
// every insert is the one point of cross-worker contention the slot
// array's per-key CAS design otherwise avoids, so it was removed. Hot
// loops insert through per-worker Writer handles instead, which count
// (and optionally journal) their own inserts with no shared state;
// CheckLoad sums the p counters at a quiescent point and enforces the
// load contract deterministically.
//
// # Clearing strategies
//
// Two clears are offered, selected empirically (ClearWriters picks per
// call):
//
//   - Full sweep (Clear/ClearRange): a parallel memset of the slot
//     array — O(slots), but the stores stream sequentially at memory
//     bandwidth (~0.5 ns/slot measured).
//   - Journaled clear via journaling Writers: each successful insert
//     records its claimed slot (exactly one journal entry per occupied
//     slot, because each slot is claimed by exactly one winning CAS);
//     ClearTouched zeros only those — O(inserted keys), but every store
//     is a scattered cache miss (~18 ns/slot measured).
//
// The crossover sits near 1.5-3% occupancy (sweepCrossover). The swap
// engines run at 12-25% occupancy (m-2m inserts into a >= 4m-slot
// table), firmly in full-sweep territory, so they use counting-only
// Writers; the journaled clear wins for sparse workloads — many small
// generations against one large table.
//
// A third design — stamping every slot with an epoch so Clear is a
// single epoch bump — was rejected: with full-width 64-bit keys the slot
// value and its epoch cannot be updated by one CAS, and every published
// two-word protocol admits a race in which a leftover value from an
// earlier epoch equals the key being inserted, letting two concurrent
// TestAndSet calls both report "inserted" (or a reader observe a
// half-initialized slot). Packing an epoch into the key word would
// require narrowing the key (fingerprinting), which trades exactness for
// speed — unacceptable for an MCMC filter whose false positives bias the
// stationary distribution. See DESIGN.md §"Versioned edge table" for
// the full analysis and the clear-strategy benchmark.
package hashtable

import (
	"fmt"
	"math"
	"sync/atomic"

	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// Probing selects the collision-resolution sequence.
type Probing int

const (
	// Linear probing: slot, slot+1, slot+2, ...
	Linear Probing = iota
	// Quadratic probing: slot, slot+1, slot+3, slot+6, ... (triangular
	// increments, which visit every slot of a power-of-two table).
	Quadratic
)

// sweepCrossover is the occupancy denominator below which the journaled
// clear beats the full sweep: scattered journal stores cost ~32x a
// streamed sweep store (measured: ~18 ns vs ~0.55 ns on commodity
// hardware; see BenchmarkClearFullSweep / BenchmarkClearJournaled), so
// clearing by journal pays off only when fewer than slots/32 slots are
// occupied.
const sweepCrossover = 32

// EdgeSet is a fixed-capacity concurrent set of uint64 keys. Safe for
// concurrent TestAndSet/Contains; the clear methods must not race with
// writers.
//
// Slot encoding: 0 = empty, otherwise key+1 (vertex IDs are int32, so
// key+1 never wraps).
//
// # Load contract
//
// New(capacity) sizes the table so that holding `capacity` keys keeps
// the load factor at or below 50% (slot count = next power of two
// >= 2*capacity). Inserting more than Capacity() distinct keys is a
// contract violation. Enforcement is two-tier:
//
//   - The plain TestAndSet path has no counter, so overload is detected
//     only when a probe sequence visits every slot without finding a
//     home, which may be long after the 50% line is crossed. This path
//     panics at that point rather than looping forever.
//   - The Writer path counts inserts per worker (uncontended), and
//     CheckLoad — called at the iteration's quiescent point — panics
//     deterministically as soon as the generation's total exceeds
//     Capacity().
type EdgeSet struct {
	slots   []uint64
	mask    uint64
	probing Probing
}

// New creates a set able to hold capacity keys at <= 50% load.
// The slot count is the next power of two >= 2*capacity.
func New(capacity int, probing Probing) *EdgeSet {
	if capacity < 1 {
		capacity = 1
	}
	n := uint64(1)
	for n < 2*uint64(capacity) {
		n <<= 1
	}
	return &EdgeSet{slots: make([]uint64, n), mask: n - 1, probing: probing}
}

// Capacity returns the maximum number of keys the set accepts under the
// load contract (half the slot count).
func (s *EdgeSet) Capacity() int { return len(s.slots) / 2 }

// NumSlots returns the slot-array length; ClearRange callers partition
// [0, NumSlots()).
func (s *EdgeSet) NumSlots() int { return len(s.slots) }

// Len returns the current number of stored keys by scanning the slot
// array — O(slots), intended for tests and diagnostics, not hot paths.
// (The shared size counter it once read was every worker's single point
// of contention and is gone.) Not safe to call concurrently with
// writers.
func (s *EdgeSet) Len() int {
	n := 0
	for _, v := range s.slots {
		if v != 0 {
			n++
		}
	}
	return n
}

// TestAndSet inserts key if absent. It returns true if the key was
// already present ("test" hit) and false if this call inserted it —
// matching the paper's TestAndSet return convention in Algorithm III.1.
//
// It panics if the probe sequence exhausts the table (see the load
// contract on EdgeSet). Hot loops that insert through a Writer get
// deterministic load checking as well.
//
//nullgraph:hotpath
func (s *EdgeSet) TestAndSet(key uint64) bool {
	present, _, _ := s.testAndSet(key)
	return present
}

// testAndSet returns (present, slot, probes): slot is meaningful only
// when the call inserted (present == false); probes is the number of
// slots the probe sequence visited (>= 1), the §VIII ablation's
// probing-cost signal.
//
//nullgraph:hotpath
func (s *EdgeSet) testAndSet(key uint64) (bool, uint64, int) {
	stored := key + 1
	slot := rng.Mix64(key) & s.mask
	for step := uint64(1); ; step++ {
		cur := atomic.LoadUint64(&s.slots[slot])
		if cur == stored {
			return true, 0, int(step)
		}
		if cur == 0 {
			if atomic.CompareAndSwapUint64(&s.slots[slot], 0, stored) {
				return false, slot, int(step)
			}
			// Collision: another thread claimed this slot between the
			// load and the CAS. Re-examine the same slot — it may now
			// hold our key.
			cur = atomic.LoadUint64(&s.slots[slot])
			if cur == stored {
				return true, 0, int(step)
			}
		}
		if step > uint64(len(s.slots)) {
			panic("hashtable: probe sequence exhausted (table over capacity)")
		}
		slot = s.next(slot, step)
	}
}

// Contains reports whether key is present, without inserting.
//
//nullgraph:hotpath
func (s *EdgeSet) Contains(key uint64) bool {
	stored := key + 1
	slot := rng.Mix64(key) & s.mask
	for step := uint64(1); ; step++ {
		cur := atomic.LoadUint64(&s.slots[slot])
		if cur == stored {
			return true
		}
		if cur == 0 {
			return false
		}
		if step > uint64(len(s.slots)) {
			return false
		}
		slot = s.next(slot, step)
	}
}

// next advances the probe sequence. step counts completed probes.
//
//nullgraph:hotpath
func (s *EdgeSet) next(slot, step uint64) uint64 {
	if s.probing == Quadratic {
		return (slot + step) & s.mask // triangular: cumulative +1,+2,+3...
	}
	return (slot + 1) & s.mask
}

// Clear empties the set with a full parallel sweep of the slot array.
// Not safe to run concurrently with TestAndSet/Contains.
func (s *EdgeSet) Clear(p int) {
	par.ForRange(len(s.slots), p, func(_ int, r par.Range) {
		clear(s.slots[r.Begin:r.End])
	})
}

// ClearRange zeros slots [begin, end) with plain stores. Callers with
// their own worker pools partition [0, NumSlots()) and sweep each chunk
// on its owner; like Clear, it must only run at quiescent points.
//
//nullgraph:hotpath
func (s *EdgeSet) ClearRange(begin, end int) {
	clear(s.slots[begin:end])
}

// String describes the table occupancy; used in debug logs. O(slots).
func (s *EdgeSet) String() string {
	return fmt.Sprintf("EdgeSet{slots=%d, size=%d}", len(s.slots), s.Len())
}

// Writer is a single-worker insertion handle providing per-worker
// (contention-free) insert accounting and, in journaling mode, the slot
// journal that enables O(inserted) clearing. A Writer must be used by
// one goroutine at a time; distinct Writers on the same EdgeSet may
// insert concurrently. The struct is padded so adjacent Writers in a
// slice don't share cache lines.
//
//nullgraph:padded
type Writer struct {
	set     *EdgeSet
	inserts int
	journal []uint32 // slot of every insert since the last reset; nil in counting mode
	_       [88]byte // pad the 40 data bytes to 128 so neighbouring Writers never share a cache line
}

// NewWriters returns p independent journaling handles for s, each with
// journal capacity perWriterCap (journals grow beyond it if needed, at
// the cost of an allocation). It panics if the slot count exceeds
// uint32 range — at 4 billion slots (32 GiB) the journal encoding would
// need widening.
func (s *EdgeSet) NewWriters(p, perWriterCap int) []*Writer {
	if uint64(len(s.slots)) > math.MaxUint32 {
		panic("hashtable: table too large for uint32 slot journals")
	}
	if p < 1 {
		p = 1
	}
	if perWriterCap < 1 {
		perWriterCap = 1
	}
	ws := make([]*Writer, p)
	for i := range ws {
		ws[i] = &Writer{set: s, journal: make([]uint32, 0, perWriterCap)}
	}
	return ws
}

// NewCountingWriters returns p insertion handles that count but do not
// journal — the right mode when the caller will clear with a full sweep
// anyway (occupancy above ~1/32; see the package doc), keeping the
// per-insert cost to one local counter increment.
func (s *EdgeSet) NewCountingWriters(p int) []*Writer {
	if p < 1 {
		p = 1
	}
	ws := make([]*Writer, p)
	for i := range ws {
		ws[i] = &Writer{set: s}
	}
	return ws
}

// TestAndSet is EdgeSet.TestAndSet through this writer's accounting: a
// successful insert bumps the per-writer count and, in journaling mode,
// records the claimed slot. No shared state is touched beyond the slot
// CAS itself.
//
//nullgraph:hotpath
func (w *Writer) TestAndSet(key uint64) bool {
	present, slot, _ := w.set.testAndSet(key)
	if !present {
		w.inserts++
		if w.journal != nil {
			w.journal = append(w.journal, uint32(slot))
		}
	}
	return present
}

// TestAndSetProbed is TestAndSet additionally reporting how many slots
// the probe sequence visited (>= 1). Instrumented swap sweeps use it to
// feed probe-length histograms; the plain TestAndSet stays the
// uninstrumented hot path.
//
//nullgraph:hotpath
func (w *Writer) TestAndSetProbed(key uint64) (present bool, probes int) {
	present, slot, probes := w.set.testAndSet(key)
	if !present {
		w.inserts++
		if w.journal != nil {
			w.journal = append(w.journal, uint32(slot))
		}
	}
	return present, probes
}

// Inserts returns the number of keys this writer inserted since its
// last reset.
func (w *Writer) Inserts() int { return w.inserts }

// Journaling reports whether this writer records slot journals.
func (w *Writer) Journaling() bool { return w.journal != nil }

// ClearTouched zeros every slot this writer inserted and resets the
// writer; it panics on counting-only writers (they cannot know their
// slots — sweep the table instead). Each occupied slot appears in
// exactly one journal (the one whose CAS claimed it), so concurrent
// ClearTouched calls on distinct writers touch disjoint slots; plain
// stores suffice because clears run at quiescent points (no concurrent
// readers/writers, ordered by the caller's join).
func (w *Writer) ClearTouched() {
	if w.journal == nil && w.inserts > 0 {
		panic("hashtable: ClearTouched on counting-only Writer")
	}
	slots := w.set.slots
	for _, idx := range w.journal {
		slots[idx] = 0
	}
	w.Reset()
}

// Reset zeroes the writer's insert count and journal without touching
// the table — for use after an external sweep (Clear/ClearRange).
func (w *Writer) Reset() {
	w.inserts = 0
	if w.journal != nil {
		w.journal = w.journal[:0]
	}
}

// CheckLoad panics if the writers' counters record more inserts than
// the table's load contract allows. Called at a quiescent point (e.g.
// end of a swap iteration) it turns silent overload into a
// deterministic failure. The scan is O(p).
func (s *EdgeSet) CheckLoad(ws []*Writer) {
	total := 0
	for _, w := range ws {
		total += w.Inserts()
	}
	if total > s.Capacity() {
		panic(fmt.Sprintf("hashtable: %d inserts exceed capacity %d (load contract: <= 50%%)", total, s.Capacity()))
	}
}

// ClearWriters checks the load contract, then empties the table with
// whichever strategy is cheaper for this generation's occupancy: the
// journaled per-writer clear when every writer journals and fewer than
// NumSlots()/sweepCrossover slots are occupied, otherwise a full
// parallel sweep. All writers are reset either way.
func (s *EdgeSet) ClearWriters(ws []*Writer, p int) {
	s.CheckLoad(ws)
	total := 0
	journaling := true
	for _, w := range ws {
		total += w.Inserts()
		journaling = journaling && w.Journaling()
	}
	if journaling && total*sweepCrossover < len(s.slots) {
		par.ForRange(len(ws), p, func(_ int, r par.Range) {
			for i := r.Begin; i < r.End; i++ {
				ws[i].ClearTouched()
			}
		})
		return
	}
	s.Clear(p)
	for _, w := range ws {
		w.Reset()
	}
}
