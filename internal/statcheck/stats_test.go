package statcheck

import (
	"math"
	"testing"
)

// TestChiSquareReferenceValues validates the p-value implementation
// against closed-form reference values (ISSUE acceptance: >= 5 values
// to 1e-6). Each reference is exact:
//
//	dof=1: P(chi² > x) = erfc(sqrt(x/2))
//	dof=2: P(chi² > x) = e^{-x/2}
//	dof=4: P(chi² > x) = e^{-x/2}(1 + x/2)
//	dof=10: P(chi² > x) = e^{-x/2} Σ_{k=0}^{4} (x/2)^k / k!
func TestChiSquareReferenceValues(t *testing.T) {
	cases := []struct {
		stat float64
		dof  int
		want float64
	}{
		{1, 1, 0.31731050786291415},     // erfc(1/√2)
		{4, 1, 0.04550026389635842},     // erfc(√2)
		{2, 2, 0.36787944117144233},     // e^{-1}
		{2 * math.Ln10, 2, 0.1},         // e^{-ln 10}
		{2, 4, 0.7357588823428847},      // 2e^{-1}
		{10, 10, 65.375 * math.Exp(-5)}, // e^{-5}·(1+5+12.5+125/6+625/24)
		{0, 5, 1},                       // zero statistic
		{23.68479130484058, 14, 0.05},   // the dof=14 5% critical value
	}
	for _, c := range cases {
		got := ChiSquareP(c.stat, c.dof)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("ChiSquareP(%v, %d) = %.12f, want %.12f (|Δ| = %g)",
				c.stat, c.dof, got, c.want, math.Abs(got-c.want))
		}
	}
}

func TestChiSquarePDegenerate(t *testing.T) {
	if !math.IsNaN(ChiSquareP(-1, 3)) {
		t.Error("negative statistic must yield NaN")
	}
	if !math.IsNaN(ChiSquareP(1, 0)) {
		t.Error("zero dof must yield NaN")
	}
}

// TestGammaPQComplement locks P + Q = 1 across both evaluation branches
// (series and continued fraction).
func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 7, 50} {
		for _, x := range []float64{0.1, 1, 3, 10, 80} {
			p, q := GammaP(a, x), GammaQ(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P(%v,%v)+Q(%v,%v) = %v, want 1", a, x, a, x, p+q)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("P=%v Q=%v outside [0,1] at a=%v x=%v", p, q, a, x)
			}
		}
	}
}

func TestChiSquareStatErrors(t *testing.T) {
	if _, _, err := ChiSquareStat([]int64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareStat([]int64{1}, []float64{1}); err == nil {
		t.Error("single cell accepted")
	}
	if _, _, err := ChiSquareStat([]int64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("zero expectation accepted")
	}
}

func TestChiSquareUniform(t *testing.T) {
	// Perfectly uniform counts: statistic 0, p-value 1.
	stat, dof, p, err := ChiSquareUniform([]int64{100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 3 || p != 1 {
		t.Errorf("got stat=%v dof=%v p=%v, want 0/3/1", stat, dof, p)
	}
	// All mass on one of k cells: stat = n(k-1), huge.
	stat, _, p, err = ChiSquareUniform([]int64{400, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 1200 {
		t.Errorf("concentrated stat = %v, want 1200", stat)
	}
	if p > 1e-100 {
		t.Errorf("concentrated p = %v, want ~0", p)
	}
	if _, _, _, err := ChiSquareUniform([]int64{0, 0}); err == nil {
		t.Error("empty observation set accepted")
	}
	if _, _, _, err := ChiSquareUniform([]int64{3, -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestBernoulliMarginalsStat(t *testing.T) {
	// Exactly expected counts: statistic 0.
	stat, dof, p, err := BernoulliMarginalsStat([]int64{250, 500}, 1000, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 2 || p != 1 {
		t.Errorf("got stat=%v dof=%v p=%v, want 0/2/1", stat, dof, p)
	}
	// One cell off by 10 sd-units: z² = 100 in that cell.
	sd := math.Sqrt(1000 * 0.25 * 0.75)
	stat, _, p, err = BernoulliMarginalsStat([]int64{250 + int64(10*sd), 500}, 1000, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if stat < 95 || p > 1e-15 {
		t.Errorf("10-sigma deviation: stat=%v p=%v", stat, p)
	}
	for _, bad := range [][]float64{{0, 0.5}, {1, 0.5}, {-0.1, 0.5}} {
		if _, _, _, err := BernoulliMarginalsStat([]int64{1, 1}, 10, bad); err == nil {
			t.Errorf("degenerate probability %v accepted", bad[0])
		}
	}
	if _, _, _, err := BernoulliMarginalsStat([]int64{1}, 0, []float64{0.5}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestNormalTwoSidedP(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 1},
		{1.959963984540054, 0.05},
		{-1.959963984540054, 0.05},
		{3.2905267314918945, 0.001},
	}
	for _, c := range cases {
		if got := NormalTwoSidedP(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalTwoSidedP(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestSidakCombine(t *testing.T) {
	// k=1: identity.
	if got := SidakCombine(0.03, 1); math.Abs(got-0.03) > 1e-15 {
		t.Errorf("k=1 got %v", got)
	}
	// Tiny p with large k stays ≈ k·p (no catastrophic cancellation).
	if got := SidakCombine(1e-12, 10); math.Abs(got-1e-11) > 1e-13 {
		t.Errorf("tiny p: got %v, want ~1e-11", got)
	}
	if got := SidakCombine(0.5, 2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("got %v, want 0.75", got)
	}
	if !math.IsNaN(SidakCombine(0.1, 0)) {
		t.Error("k=0 must yield NaN")
	}
}

func TestKSTwoSample(t *testing.T) {
	// Identical samples: D = 0, p = 1.
	a := []float64{1, 2, 3, 4, 5}
	d, p, err := KSTwoSample(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || p != 1 {
		t.Errorf("identical samples: D=%v p=%v", d, p)
	}
	// Disjoint supports: D = 1, p ~ 0.
	b := make([]float64, 200)
	c := make([]float64, 200)
	for i := range b {
		b[i] = float64(i)
		c[i] = float64(i) + 1000
	}
	d, p, err = KSTwoSample(b, c)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("disjoint supports: D=%v, want 1", d)
	}
	if p > 1e-10 {
		t.Errorf("disjoint supports: p=%v, want ~0", p)
	}
	if _, _, err := KSTwoSample(nil, a); err == nil {
		t.Error("empty sample accepted")
	}
}
