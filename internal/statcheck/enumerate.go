package statcheck

import (
	"fmt"
	"math"
	"sort"

	"nullgraph/internal/degseq"
	"nullgraph/internal/directed"
	"nullgraph/internal/graph"
)

// enumeration guards: state spaces are meant to be *small* (the point
// is an exact target distribution), so refuse inputs that could blow
// up instead of grinding.
const (
	maxEnumVertices = 12
	maxEnumStates   = 200000
)

// Space is an exactly enumerated sampler state space: every state's
// canonical signature, with a lookup index. States are sorted by
// signature so a Space built twice from the same input is identical.
type Space struct {
	// Name labels the space in reports.
	Name string
	// States holds one canonical signature per state.
	States []string
	// Index maps a signature back to its position in States.
	Index map[string]int
}

// newSpace sorts, indexes and validates a signature list.
func newSpace(name string, sigs []string) (*Space, error) {
	sort.Strings(sigs)
	idx := make(map[string]int, len(sigs))
	for i, s := range sigs {
		if _, dup := idx[s]; dup {
			return nil, fmt.Errorf("statcheck: duplicate state signature in space %q", name)
		}
		idx[s] = i
	}
	return &Space{Name: name, States: sigs, Index: idx}, nil
}

// NumStates returns the size of the space.
func (s *Space) NumStates() int { return len(s.States) }

// SignatureOfEdges returns the canonical signature of a simple graph:
// its canonical edge keys, sorted, packed little-endian. Two edge
// lists have equal signatures iff they are the same edge set.
func SignatureOfEdges(edges []graph.Edge) string {
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		keys[i] = e.Key()
	}
	return packKeys(keys)
}

// SignatureOfArcs is the directed analog (arc keys are ordered pairs,
// so orientation is part of the signature).
func SignatureOfArcs(arcs []directed.Arc) string {
	keys := make([]uint64, len(arcs))
	for i, a := range arcs {
		keys[i] = a.Key()
	}
	return packKeys(keys)
}

func packKeys(keys []uint64) string {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sig := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		for b := 0; b < 8; b++ {
			sig = append(sig, byte(k>>(8*b)))
		}
	}
	return string(sig)
}

// EnumerateSimpleGraphs enumerates every labeled simple graph whose
// degree sequence is dist expanded in class order (the generators'
// vertex layout), returning the space of canonical signatures.
//
// The backtracking invariant makes each graph appear exactly once: at
// every step the lowest-numbered vertex u with remaining degree is
// saturated completely, by choosing its neighbor set among the
// higher-numbered vertices with remaining degree in one increasing
// sweep. Choosing u's full neighborhood at once (rather than one edge
// at a time) is what removes edge-ordering duplicates.
func EnumerateSimpleGraphs(dist *degseq.Distribution, name string) (*Space, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	degrees := dist.ToDegrees()
	n := len(degrees)
	if n > maxEnumVertices {
		return nil, fmt.Errorf("statcheck: %d vertices exceed the enumeration limit %d", n, maxEnumVertices)
	}
	if dist.NumStubs()%2 != 0 {
		return nil, fmt.Errorf("statcheck: odd stub total %d is not realizable", dist.NumStubs())
	}

	res := append([]int64(nil), degrees...)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	edges := make([]graph.Edge, 0, dist.NumEdges())
	var sigs []string

	var saturate func() error
	var choose func(u int, need int, cand []int, start int) error

	saturate = func() error {
		u := -1
		for v := 0; v < n; v++ {
			if res[v] > 0 {
				u = v
				break
			}
		}
		if u == -1 {
			if len(sigs) >= maxEnumStates {
				return fmt.Errorf("statcheck: state space exceeds %d states", maxEnumStates)
			}
			sigs = append(sigs, SignatureOfEdges(edges))
			return nil
		}
		// u is the lowest unsaturated vertex, so every candidate is
		// above it (lower vertices have res == 0).
		cand := make([]int, 0, n-u-1)
		for v := u + 1; v < n; v++ {
			if res[v] > 0 && !adj[u][v] {
				cand = append(cand, v)
			}
		}
		return choose(u, int(res[u]), cand, 0)
	}

	choose = func(u, need int, cand []int, start int) error {
		if need == 0 {
			return saturate()
		}
		for i := start; i <= len(cand)-need; i++ {
			v := cand[i]
			adj[u][v], adj[v][u] = true, true
			res[u]--
			res[v]--
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			if err := choose(u, need-1, cand, i+1); err != nil {
				return err
			}
			edges = edges[:len(edges)-1]
			res[u]++
			res[v]++
			adj[u][v], adj[v][u] = false, false
		}
		return nil
	}

	if err := saturate(); err != nil {
		return nil, err
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("statcheck: degree sequence has no simple realization")
	}
	return newSpace(name, sigs)
}

// SpaceEnumeration is an exactly enumerated sampling-space cell: the
// state space plus the cell's target distribution and a representative
// start state, everything a uniformity gate needs.
type SpaceEnumeration struct {
	// Space is the enumerated state space (canonical signatures).
	Space *Space
	// StubProbs is the stub-labeled target distribution over
	// Space.States — state probability proportional to its stub-matching
	// count ∏d_v!/(∏w_uv!·∏2^ℓ·ℓ!) — present for stub-labeled cells and
	// nil for vertex-labeled ones, whose target is uniform.
	StubProbs []float64
	// Start is a representative member of the cell (an independent
	// copy), usable as a chain's start state.
	Start *graph.EdgeList
}

// EnumerateSpaceGraphs enumerates every labeled graph of the
// sampling-space cell (self-loops and edge multiplicities as the cell
// allows) realizing dist in class order. Signatures include edge
// multiplicity — a doubled edge contributes its key twice — so distinct
// multigraphs never collide.
//
// The exactly-once argument extends EnumerateSimpleGraphs's: at every
// step the lowest-numbered vertex u with remaining degree is saturated
// completely, by choosing its loop count first and then the
// multiplicity of each edge to a higher-numbered vertex in one
// increasing sweep. Every edge incident to u is placed at u's step
// (edges from lower vertices landed earlier and already consumed u's
// residual), so a graph's decomposition into steps is unique.
func EnumerateSpaceGraphs(dist *degseq.Distribution, sp graph.Space, name string) (*SpaceEnumeration, error) {
	if !sp.Valid() {
		return nil, fmt.Errorf("statcheck: invalid space %d", int(sp))
	}
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	degrees := dist.ToDegrees()
	n := len(degrees)
	if n > maxEnumVertices {
		return nil, fmt.Errorf("statcheck: %d vertices exceed the enumeration limit %d", n, maxEnumVertices)
	}
	if dist.NumStubs()%2 != 0 {
		return nil, fmt.Errorf("statcheck: odd stub total %d is not realizable", dist.NumStubs())
	}
	allowLoops, allowMulti := sp.AllowsLoops(), sp.AllowsMulti()

	res := append([]int64(nil), degrees...)
	edges := make([]graph.Edge, 0, dist.NumEdges())
	var (
		sigs  []string
		logW  = map[string]float64{}
		start []graph.Edge
	)

	var saturate func() error
	var choose func(u int, need int64, v int) error

	saturate = func() error {
		u := -1
		for v := 0; v < n; v++ {
			if res[v] > 0 {
				u = v
				break
			}
		}
		if u == -1 {
			if len(sigs) >= maxEnumStates {
				return fmt.Errorf("statcheck: state space exceeds %d states", maxEnumStates)
			}
			el := graph.NewEdgeList(append([]graph.Edge(nil), edges...), n)
			sig := SignatureOfEdges(edges)
			if _, dup := logW[sig]; dup {
				return fmt.Errorf("statcheck: enumerator produced state %q twice", name)
			}
			logW[sig] = el.LogStubLabelings()
			sigs = append(sigs, sig)
			if start == nil {
				start = el.Edges
			}
			return nil
		}
		maxLoops := int64(0)
		if allowLoops {
			maxLoops = res[u] / 2
			if !allowMulti && maxLoops > 1 {
				maxLoops = 1
			}
		}
		orig := res[u]
		for l := int64(0); l <= maxLoops; l++ {
			for k := int64(0); k < l; k++ {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(u)})
			}
			// u's residual is consumed here in full (the remainder goes to
			// higher vertices via choose), so zero it before descending.
			res[u] = 0
			if err := choose(u, orig-2*l, u+1); err != nil {
				return err
			}
			res[u] = orig
			edges = edges[:len(edges)-int(l)]
		}
		return nil
	}

	choose = func(u int, need int64, v int) error {
		if need == 0 {
			return saturate()
		}
		if v >= n {
			return nil // dead end: u cannot be saturated on this branch
		}
		maxW := res[v]
		if maxW > need {
			maxW = need
		}
		if !allowMulti && maxW > 1 {
			maxW = 1
		}
		for w := int64(0); w <= maxW; w++ {
			res[v] -= w
			for k := int64(0); k < w; k++ {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			}
			if err := choose(u, need-w, v+1); err != nil {
				return err
			}
			edges = edges[:len(edges)-int(w)]
			res[v] += w
		}
		return nil
	}

	if err := saturate(); err != nil {
		return nil, err
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("statcheck: degree sequence has no realization in space %s", sp)
	}
	space, err := newSpace(name, sigs)
	if err != nil {
		return nil, err
	}
	enum := &SpaceEnumeration{
		Space: space,
		Start: graph.NewEdgeList(start, n),
	}
	if !sp.VertexLabeled() {
		// Normalize the stub-matching weights into probabilities in the
		// sorted state order, max-shifted for stability.
		maxLog := math.Inf(-1)
		for _, lw := range logW {
			if lw > maxLog {
				maxLog = lw
			}
		}
		probs := make([]float64, len(space.States))
		sum := 0.0
		for i, sig := range space.States {
			probs[i] = math.Exp(logW[sig] - maxLog)
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		enum.StubProbs = probs
	}
	return enum, nil
}

// edgesFromSignature decodes a canonical signature (sorted 8-byte
// little-endian edge keys) back into its edge list. It inverts
// SignatureOfEdges exactly, so decoding a space's states recovers the
// graphs the enumerator produced.
func edgesFromSignature(sig string) []graph.Edge {
	edges := make([]graph.Edge, len(sig)/8)
	for i := range edges {
		var k uint64
		for b := 0; b < 8; b++ {
			k |= uint64(sig[i*8+b]) << (8 * b)
		}
		edges[i] = graph.EdgeFromKey(k)
	}
	return edges
}

// ConnectedSubspace filters a simple-graph space down to its connected
// states: each signature is decoded and kept iff the graph has a single
// connected component on n vertices. The result inherits the parent
// enumerator's exactly-once guarantee (filtering cannot introduce
// duplicates, and newSpace re-checks), so it is a valid target for the
// connected-chain uniformity gates.
func ConnectedSubspace(space *Space, n int, name string) (*Space, error) {
	var sigs []string
	for _, sig := range space.States {
		el := graph.NewEdgeList(edgesFromSignature(sig), n)
		if _, count := graph.ConnectedComponents(el, 1); count == 1 {
			sigs = append(sigs, sig)
		}
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("statcheck: space %q has no connected states", space.Name)
	}
	return newSpace(name, sigs)
}

// EnumerateSimpleDigraphs enumerates every labeled simple digraph (no
// self-arcs, no duplicate arcs) realizing the joint (out, in) degree
// distribution in class order. Same exactly-once argument as the
// undirected enumerator, on the out side: the lowest vertex with
// remaining out-degree picks its full target set per step.
func EnumerateSimpleDigraphs(d *directed.JointDistribution, name string) (*Space, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.OutStubs() != d.InStubs() {
		return nil, fmt.Errorf("statcheck: out stubs %d != in stubs %d", d.OutStubs(), d.InStubs())
	}
	out, in := d.ToJointDegrees()
	n := len(out)
	if n > maxEnumVertices {
		return nil, fmt.Errorf("statcheck: %d vertices exceed the enumeration limit %d", n, maxEnumVertices)
	}

	outRes := append([]int64(nil), out...)
	inRes := append([]int64(nil), in...)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	arcs := make([]directed.Arc, 0, d.NumArcs())
	var sigs []string

	var saturate func() error
	var choose func(u int, need int, cand []int, start int) error

	saturate = func() error {
		u := -1
		for v := 0; v < n; v++ {
			if outRes[v] > 0 {
				u = v
				break
			}
		}
		if u == -1 {
			if len(sigs) >= maxEnumStates {
				return fmt.Errorf("statcheck: state space exceeds %d states", maxEnumStates)
			}
			sigs = append(sigs, SignatureOfArcs(arcs))
			return nil
		}
		// Unlike the undirected case, in-stubs below u are still live,
		// so candidates span all vertices except u itself.
		cand := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u && inRes[v] > 0 && !adj[u][v] {
				cand = append(cand, v)
			}
		}
		return choose(u, int(outRes[u]), cand, 0)
	}

	choose = func(u, need int, cand []int, start int) error {
		if need == 0 {
			return saturate()
		}
		for i := start; i <= len(cand)-need; i++ {
			v := cand[i]
			adj[u][v] = true
			outRes[u]--
			inRes[v]--
			arcs = append(arcs, directed.Arc{From: int32(u), To: int32(v)})
			if err := choose(u, need-1, cand, i+1); err != nil {
				return err
			}
			arcs = arcs[:len(arcs)-1]
			outRes[u]++
			inRes[v]++
			adj[u][v] = false
		}
		return nil
	}

	if err := saturate(); err != nil {
		return nil, err
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("statcheck: joint sequence has no simple realization")
	}
	return newSpace(name, sigs)
}
