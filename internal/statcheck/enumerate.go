package statcheck

import (
	"fmt"
	"sort"

	"nullgraph/internal/degseq"
	"nullgraph/internal/directed"
	"nullgraph/internal/graph"
)

// enumeration guards: state spaces are meant to be *small* (the point
// is an exact target distribution), so refuse inputs that could blow
// up instead of grinding.
const (
	maxEnumVertices = 12
	maxEnumStates   = 200000
)

// Space is an exactly enumerated sampler state space: every state's
// canonical signature, with a lookup index. States are sorted by
// signature so a Space built twice from the same input is identical.
type Space struct {
	// Name labels the space in reports.
	Name string
	// States holds one canonical signature per state.
	States []string
	// Index maps a signature back to its position in States.
	Index map[string]int
}

// newSpace sorts, indexes and validates a signature list.
func newSpace(name string, sigs []string) (*Space, error) {
	sort.Strings(sigs)
	idx := make(map[string]int, len(sigs))
	for i, s := range sigs {
		if _, dup := idx[s]; dup {
			return nil, fmt.Errorf("statcheck: duplicate state signature in space %q", name)
		}
		idx[s] = i
	}
	return &Space{Name: name, States: sigs, Index: idx}, nil
}

// NumStates returns the size of the space.
func (s *Space) NumStates() int { return len(s.States) }

// SignatureOfEdges returns the canonical signature of a simple graph:
// its canonical edge keys, sorted, packed little-endian. Two edge
// lists have equal signatures iff they are the same edge set.
func SignatureOfEdges(edges []graph.Edge) string {
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		keys[i] = e.Key()
	}
	return packKeys(keys)
}

// SignatureOfArcs is the directed analog (arc keys are ordered pairs,
// so orientation is part of the signature).
func SignatureOfArcs(arcs []directed.Arc) string {
	keys := make([]uint64, len(arcs))
	for i, a := range arcs {
		keys[i] = a.Key()
	}
	return packKeys(keys)
}

func packKeys(keys []uint64) string {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sig := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		for b := 0; b < 8; b++ {
			sig = append(sig, byte(k>>(8*b)))
		}
	}
	return string(sig)
}

// EnumerateSimpleGraphs enumerates every labeled simple graph whose
// degree sequence is dist expanded in class order (the generators'
// vertex layout), returning the space of canonical signatures.
//
// The backtracking invariant makes each graph appear exactly once: at
// every step the lowest-numbered vertex u with remaining degree is
// saturated completely, by choosing its neighbor set among the
// higher-numbered vertices with remaining degree in one increasing
// sweep. Choosing u's full neighborhood at once (rather than one edge
// at a time) is what removes edge-ordering duplicates.
func EnumerateSimpleGraphs(dist *degseq.Distribution, name string) (*Space, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	degrees := dist.ToDegrees()
	n := len(degrees)
	if n > maxEnumVertices {
		return nil, fmt.Errorf("statcheck: %d vertices exceed the enumeration limit %d", n, maxEnumVertices)
	}
	if dist.NumStubs()%2 != 0 {
		return nil, fmt.Errorf("statcheck: odd stub total %d is not realizable", dist.NumStubs())
	}

	res := append([]int64(nil), degrees...)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	edges := make([]graph.Edge, 0, dist.NumEdges())
	var sigs []string

	var saturate func() error
	var choose func(u int, need int, cand []int, start int) error

	saturate = func() error {
		u := -1
		for v := 0; v < n; v++ {
			if res[v] > 0 {
				u = v
				break
			}
		}
		if u == -1 {
			if len(sigs) >= maxEnumStates {
				return fmt.Errorf("statcheck: state space exceeds %d states", maxEnumStates)
			}
			sigs = append(sigs, SignatureOfEdges(edges))
			return nil
		}
		// u is the lowest unsaturated vertex, so every candidate is
		// above it (lower vertices have res == 0).
		cand := make([]int, 0, n-u-1)
		for v := u + 1; v < n; v++ {
			if res[v] > 0 && !adj[u][v] {
				cand = append(cand, v)
			}
		}
		return choose(u, int(res[u]), cand, 0)
	}

	choose = func(u, need int, cand []int, start int) error {
		if need == 0 {
			return saturate()
		}
		for i := start; i <= len(cand)-need; i++ {
			v := cand[i]
			adj[u][v], adj[v][u] = true, true
			res[u]--
			res[v]--
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			if err := choose(u, need-1, cand, i+1); err != nil {
				return err
			}
			edges = edges[:len(edges)-1]
			res[u]++
			res[v]++
			adj[u][v], adj[v][u] = false, false
		}
		return nil
	}

	if err := saturate(); err != nil {
		return nil, err
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("statcheck: degree sequence has no simple realization")
	}
	return newSpace(name, sigs)
}

// EnumerateSimpleDigraphs enumerates every labeled simple digraph (no
// self-arcs, no duplicate arcs) realizing the joint (out, in) degree
// distribution in class order. Same exactly-once argument as the
// undirected enumerator, on the out side: the lowest vertex with
// remaining out-degree picks its full target set per step.
func EnumerateSimpleDigraphs(d *directed.JointDistribution, name string) (*Space, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.OutStubs() != d.InStubs() {
		return nil, fmt.Errorf("statcheck: out stubs %d != in stubs %d", d.OutStubs(), d.InStubs())
	}
	out, in := d.ToJointDegrees()
	n := len(out)
	if n > maxEnumVertices {
		return nil, fmt.Errorf("statcheck: %d vertices exceed the enumeration limit %d", n, maxEnumVertices)
	}

	outRes := append([]int64(nil), out...)
	inRes := append([]int64(nil), in...)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	arcs := make([]directed.Arc, 0, d.NumArcs())
	var sigs []string

	var saturate func() error
	var choose func(u int, need int, cand []int, start int) error

	saturate = func() error {
		u := -1
		for v := 0; v < n; v++ {
			if outRes[v] > 0 {
				u = v
				break
			}
		}
		if u == -1 {
			if len(sigs) >= maxEnumStates {
				return fmt.Errorf("statcheck: state space exceeds %d states", maxEnumStates)
			}
			sigs = append(sigs, SignatureOfArcs(arcs))
			return nil
		}
		// Unlike the undirected case, in-stubs below u are still live,
		// so candidates span all vertices except u itself.
		cand := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u && inRes[v] > 0 && !adj[u][v] {
				cand = append(cand, v)
			}
		}
		return choose(u, int(outRes[u]), cand, 0)
	}

	choose = func(u, need int, cand []int, start int) error {
		if need == 0 {
			return saturate()
		}
		for i := start; i <= len(cand)-need; i++ {
			v := cand[i]
			adj[u][v] = true
			outRes[u]--
			inRes[v]--
			arcs = append(arcs, directed.Arc{From: int32(u), To: int32(v)})
			if err := choose(u, need-1, cand, i+1); err != nil {
				return err
			}
			arcs = arcs[:len(arcs)-1]
			outRes[u]++
			inRes[v]++
			adj[u][v] = false
		}
		return nil
	}

	if err := saturate(); err != nil {
		return nil, err
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("statcheck: joint sequence has no simple realization")
	}
	return newSpace(name, sigs)
}
