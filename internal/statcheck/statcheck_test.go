package statcheck

import (
	"math"
	"testing"

	"nullgraph/internal/graph"
	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/metrics"
	"nullgraph/internal/swap"
)

// TestStatcheckSuite is the tier-2 gate: every registry check must pass
// at a fixed seed with single-worker samplers. Budgets are the
// documented defaults (DESIGN.md §11); the run takes a few seconds, so
// -short skips it.
func TestStatcheckSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 statistical suite (run without -short, or `make test-stat`)")
	}
	rep, err := RunChecks(nil, Config{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checks) != len(Checks()) {
		t.Fatalf("ran %d checks, registry has %d", len(rep.Checks), len(Checks()))
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("%s REJECTED: final attempt stat=%v dof=%d p=%v (alpha=%v, %d attempts)",
				c.Name, c.Attempts[len(c.Attempts)-1].Stat, c.Attempts[len(c.Attempts)-1].Dof,
				c.P(), c.Alpha, len(c.Attempts))
		}
	}
	if !rep.Pass {
		t.Error("report verdict false")
	}
}

// TestStatcheckSuiteParallelWorkers re-runs the uniformity checks with
// a multi-worker sampler: parallelism must not change the sampled
// distribution. Tier-2 (skipped under -short).
func TestStatcheckSuiteParallelWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 statistical suite")
	}
	for _, name := range []string{"swap-matchings-k6", "directed-derangements-n4", "connected-uniformity-c6"} {
		c, ok := CheckByName(name)
		if !ok {
			t.Fatalf("unknown check %s", name)
		}
		res, err := c.Run(Config{Seed: 7, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass {
			t.Errorf("%s with 4 workers REJECTED (p=%v)", name, res.P())
		}
	}
}

// TestStatcheckRejectsZeroIterationSwap locks the other direction: a
// swap "sampler" that never swaps (0 iterations from a fixed start)
// must be rejected deterministically — every attempt lands all mass on
// the start state.
func TestStatcheckRejectsZeroIterationSwap(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{1: 6})
	space, err := EnumerateSimpleGraphs(dist, "k6")
	if err != nil {
		t.Fatal(err)
	}
	start, err := havelhakimi.Generate(dist)
	if err != nil {
		t.Fatal(err)
	}
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	cfg := Config{Seed: 3, Workers: 1, Samples: 300}
	res, err := CheckUniformity("zero-iteration-swap", space, 300, cfg, func(attemptSeed uint64, i int) (string, error) {
		copy(el.Edges, start.Edges)
		swap.Run(el, swap.Options{Iterations: 0, Workers: 1, Seed: SampleSeed(attemptSeed, i)})
		return SignatureOfEdges(el.Edges), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("frozen sampler passed the uniformity gate")
	}
	if len(res.Attempts) != cfg.maxAttempts() {
		t.Errorf("rejection after %d attempts, want the full retry budget %d", len(res.Attempts), cfg.maxAttempts())
	}
	for _, a := range res.Attempts {
		// All 300 draws on one of 15 states: stat = 300·14 exactly.
		if a.Stat != 300*14 {
			t.Errorf("attempt stat = %v, want 4200", a.Stat)
		}
		if a.P >= res.Alpha {
			t.Errorf("attempt p = %v not below alpha %v", a.P, res.Alpha)
		}
	}
}

// spaceChainDraw builds a per-draw closure running the cell's chain
// from an enumerated start, mirroring runSpaceChainUniformity.
func spaceChainDraw(t *testing.T, counts map[int64]int64, sp graph.Space) (*SpaceEnumeration, func(attemptSeed uint64, i int) (string, error), func()) {
	t.Helper()
	dist := mustCounts(t, counts)
	enum, err := EnumerateSpaceGraphs(dist, sp, "biased-"+sp.String())
	if err != nil {
		t.Fatal(err)
	}
	start := enum.Start
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	eng := swap.NewEngine(el, swap.Options{Space: sp, Iterations: spaceChainIterations, Workers: 1})
	draw := func(attemptSeed uint64, i int) (string, error) {
		copy(el.Edges, start.Edges)
		eng.SetSeed(SampleSeed(attemptSeed, i))
		eng.Reset(el)
		swap.RunEngine(eng)
		return SignatureOfEdges(el.Edges), nil
	}
	return enum, draw, eng.Close
}

// TestStatcheckRejectsMislabeledSpaceChains locks rejection in BOTH
// labeling directions on the loopy {1,1,2,2} cell, whose stub target
// (4,4,2,2,1)/13 is far from uniform: a correct stub-labeled chain
// tested against the uniform (vertex-labeled) target must fail, and a
// correct vertex-labeled chain tested against the stub-weighted target
// must fail. Together with the passing per-cell gates this shows the
// harness distinguishes the two labelings, not merely that chains
// "look mixed".
func TestStatcheckRejectsMislabeledSpaceChains(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 statistical suite")
	}
	cfg := Config{Seed: 11, Workers: 1, Samples: 2000}

	// Direction 1: stub chain vs uniform target.
	enum, draw, done := spaceChainDraw(t, map[int64]int64{1: 2, 2: 2}, graph.LoopyStub)
	res, err := CheckUniformity("stub-chain-vs-uniform", enum.Space, 2000, cfg, draw)
	done()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Errorf("stub-labeled chain passed the uniform gate (p=%v); the labelings are indistinguishable", res.P())
	}

	// Direction 2: vertex chain vs stub-weighted target. The weighted
	// target comes from a stub-labeled enumeration of the same cell.
	weighted, werr := EnumerateSpaceGraphs(mustCounts(t, map[int64]int64{1: 2, 2: 2}), graph.LoopyStub, "weighted-target")
	if werr != nil {
		t.Fatal(werr)
	}
	enum2, draw2, done2 := spaceChainDraw(t, map[int64]int64{1: 2, 2: 2}, graph.LoopyVertex)
	res, err = CheckWeightedUniformity("vertex-chain-vs-stub", enum2.Space, weighted.StubProbs, 2000, cfg, draw2)
	done2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Errorf("vertex-labeled chain passed the stub-weighted gate (p=%v)", res.P())
	}
}

// TestStatcheckWeightedUniformityValidates: a probability vector that
// does not match the state space is a usage error.
func TestStatcheckWeightedUniformityValidates(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{1: 6})
	space, err := EnumerateSimpleGraphs(dist, "k6")
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckWeightedUniformity("bad", space, []float64{0.5, 0.5}, 10, Config{Seed: 1},
		func(uint64, int) (string, error) { return "", nil })
	if err == nil {
		t.Fatal("mismatched probability vector accepted")
	}
}

// TestStatcheckRejectsPerturbedEdgeskip locks rejection for the
// Bernoulli-marginal family: the true edge-skipping sampler tested
// against a perturbed probability model must fail.
func TestStatcheckRejectsPerturbedEdgeskip(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2 statistical suite")
	}
	res, err := runEdgeskipMarginals(Config{Seed: 5, Workers: 1}, "edgeskip-perturbed", func(probs []float64) {
		for k := range probs {
			probs[k] = math.Min(probs[k]+0.1, 0.95)
		}
	}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("sampler passed against a perturbed probability model")
	}
}

// TestStatcheckRejectsShiftedMoments locks rejection for the
// class-moment family with a deterministic off-mean sampler.
func TestStatcheckRejectsShiftedMoments(t *testing.T) {
	mean := []float64{10, 20}
	variance := []float64{4, 4}
	cfg := Config{Seed: 2, Samples: 100}
	res, err := CheckClassMoments("shifted", mean, variance, 100, cfg, func(attemptSeed uint64, i int, totals []float64) error {
		totals[0] = mean[0] + 3 // +1.5 sd per draw ⇒ z explodes with n
		totals[1] = mean[1]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("shifted sampler passed the moment gate")
	}
	// And the exact-mean sampler passes with z = 0.
	res, err = CheckClassMoments("exact", mean, variance, 100, cfg, func(attemptSeed uint64, i int, totals []float64) error {
		totals[0], totals[1] = mean[0], mean[1]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || res.Attempts[0].Stat != 0 {
		t.Errorf("exact-mean sampler: pass=%v stat=%v", res.Pass, res.Attempts[0].Stat)
	}
}

// TestStatcheckOutOfSpaceDrawIsError: leaving the enumerated space is a
// correctness bug, not a statistical rejection.
func TestStatcheckOutOfSpaceDrawIsError(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{1: 2})
	space, err := EnumerateSimpleGraphs(dist, "one-edge")
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckUniformity("escape", space, 10, Config{Seed: 1}, func(attemptSeed uint64, i int) (string, error) {
		return "not-a-state", nil
	})
	if err == nil {
		t.Fatal("out-of-space draw did not error")
	}
}

// TestStatcheckRetrySeedsDiffer: each retry attempt must use a distinct
// derived seed, and sample seeds must differ across attempts.
func TestStatcheckRetrySeedsDiffer(t *testing.T) {
	s0, s1 := AttemptSeed(9, 0), AttemptSeed(9, 1)
	if s0 == s1 {
		t.Error("attempt seeds collide")
	}
	if SampleSeed(s0, 0) == SampleSeed(s1, 0) {
		t.Error("sample seeds collide across attempts")
	}
	if SampleSeed(s0, 0) == SampleSeed(s0, 1) {
		t.Error("sample seeds collide within an attempt")
	}
}

func TestStatcheckConfigDefaults(t *testing.T) {
	var c Config
	if c.alpha() != 1e-3 || c.maxAttempts() != 3 || c.samples(500) != 500 {
		t.Errorf("defaults: alpha=%v attempts=%d samples=%d", c.alpha(), c.maxAttempts(), c.samples(500))
	}
	c = Config{Alpha: 0.01, MaxAttempts: 1, Samples: 42}
	if c.alpha() != 0.01 || c.maxAttempts() != 1 || c.samples(500) != 42 {
		t.Error("overrides ignored")
	}
}

func TestStatcheckRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Checks() {
		if c.Name == "" || c.Description == "" || c.DefaultSamples <= 0 || c.Run == nil {
			t.Errorf("incomplete registry entry %+v", c.Name)
		}
		if names[c.Name] {
			t.Errorf("duplicate check name %s", c.Name)
		}
		names[c.Name] = true
	}
	if _, ok := CheckByName("swap-matchings-k6"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := CheckByName("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

// TestStatcheckProbgenMomentsMatchTargets ties the analytic Bernoulli
// moments to the target degrees: probgen's matrix must give every class
// an expected total degree equal to count·degree (the row-residual
// property, restated through the moments the tier-2 check uses).
func TestStatcheckProbgenMomentsMatchTargets(t *testing.T) {
	dist, m, err := probgenFixture()
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := metrics.BernoulliClassDegreeMoments(dist, m)
	for j, cls := range dist.Classes {
		want := float64(cls.Count * cls.Degree)
		if math.Abs(mean[j]-want) > 1e-6*want {
			t.Errorf("class %d: expected total degree %v, want %v", j, mean[j], want)
		}
		if variance[j] <= 0 {
			t.Errorf("class %d: non-positive variance %v", j, variance[j])
		}
	}
}
