package statcheck

import (
	"math"
	"strings"
	"testing"

	"nullgraph/internal/connected"
	"nullgraph/internal/graph"
	"nullgraph/internal/swap"
)

// TestConnectedSpaceCounts locks the exact connected-state counts of
// the small enumerable sequences. These are the fixture sizes the
// connected-uniformity gates test against, derived by hand:
//
//   - {2×5}: the 12 labeled 5-cycles (4!/2); a 2-regular graph splits
//     only into cycles of length >= 3, and 5 does not split, so all 12
//     are connected.
//   - {2×6}: 70 = 60 labeled 6-cycles (5!/2) + 10 triangle pairs
//     (C(6,3)/2); exactly the 10 pairs are disconnected.
//   - {1,1,2,2,2}: 7 simple realizations, 6 connected — the lone
//     disconnected one is the triangle on the degree-2 vertices plus
//     the edge between the degree-1 pair.
//   - {2×4}: the 3 labeled 4-cycles, all connected.
func TestConnectedSpaceCounts(t *testing.T) {
	cases := []struct {
		counts     map[int64]int64
		full, conn int
	}{
		{map[int64]int64{2: 5}, 12, 12},
		{map[int64]int64{2: 6}, 70, 60},
		{map[int64]int64{1: 2, 2: 3}, 7, 6},
		{map[int64]int64{2: 4}, 3, 3},
	}
	for _, tc := range cases {
		dist := mustCounts(t, tc.counts)
		full, err := EnumerateSimpleGraphs(dist, "full")
		if err != nil {
			t.Fatalf("%v: %v", tc.counts, err)
		}
		if full.NumStates() != tc.full {
			t.Errorf("%v: %d states, want %d", tc.counts, full.NumStates(), tc.full)
		}
		sub, err := ConnectedSubspace(full, int(dist.NumVertices()), "conn")
		if err != nil {
			t.Fatalf("%v: %v", tc.counts, err)
		}
		if sub.NumStates() != tc.conn {
			t.Errorf("%v: %d connected states, want %d", tc.counts, sub.NumStates(), tc.conn)
		}
	}
}

// TestConnectedSubspaceExactlyOnce verifies the connected subspace is a
// well-formed target: every state decodes to a connected graph, every
// state is a member of the parent space (exactly once — Index is built
// by newSpace, which rejects duplicates), and building it twice yields
// the identical sorted state list.
func TestConnectedSubspaceExactlyOnce(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{2: 6})
	full, err := EnumerateSimpleGraphs(dist, "full")
	if err != nil {
		t.Fatal(err)
	}
	n := int(dist.NumVertices())
	sub, err := ConnectedSubspace(full, n, "conn")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sig := range sub.States {
		if seen[sig] {
			t.Fatalf("state enumerated twice")
		}
		seen[sig] = true
		if _, ok := full.Index[sig]; !ok {
			t.Fatalf("connected state missing from the parent space")
		}
		el := graph.NewEdgeList(edgesFromSignature(sig), n)
		if _, count := graph.ConnectedComponents(el, 1); count != 1 {
			t.Fatalf("disconnected state leaked into the connected subspace (%d components)", count)
		}
	}
	// Every parent state NOT in the subspace must be disconnected.
	for _, sig := range full.States {
		if seen[sig] {
			continue
		}
		el := graph.NewEdgeList(edgesFromSignature(sig), n)
		if _, count := graph.ConnectedComponents(el, 1); count == 1 {
			t.Fatalf("connected state dropped from the subspace")
		}
	}
	again, err := ConnectedSubspace(full, n, "conn")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.States) != len(sub.States) {
		t.Fatalf("rebuild changed the state count")
	}
	for i := range sub.States {
		if again.States[i] != sub.States[i] {
			t.Fatal("rebuild is not deterministic")
		}
	}
}

// TestConnectedSubspaceEmptyErrors: a sequence with no connected
// realization (perfect matchings beyond a single edge) must be refused,
// not silently turned into an empty target.
func TestConnectedSubspaceEmptyErrors(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{1: 4})
	full, err := EnumerateSimpleGraphs(dist, "matchings")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectedSubspace(full, int(dist.NumVertices()), "conn"); err == nil {
		t.Fatal("empty connected subspace accepted")
	}
}

// TestConnectedGateRejectsLeakingSampler is the first rejection
// direction of the connected gate: an UNCONSTRAINED chain tested
// against the connected subspace must fail hard. The failure mode is
// not a p-value — a disconnected draw leaves the enumerated space,
// which CheckUniformity treats as a correctness error. On {2×6}, 10 of
// 70 states are disconnected, so a mixed unconstrained chain leaks
// within a handful of draws.
func TestConnectedGateRejectsLeakingSampler(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{2: 6})
	full, err := EnumerateSimpleGraphs(dist, "full")
	if err != nil {
		t.Fatal(err)
	}
	space, err := ConnectedSubspace(full, int(dist.NumVertices()), "conn")
	if err != nil {
		t.Fatal(err)
	}
	start, err := connected.Realize(dist)
	if err != nil {
		t.Fatal(err)
	}
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	eng := swap.NewEngine(el, swap.Options{Iterations: connectedChainIterations, Workers: 1})
	defer eng.Close()
	_, err = CheckUniformity("leaking-unconstrained", space, 300, Config{Seed: 1, Workers: 1, Samples: 300},
		func(attemptSeed uint64, i int) (string, error) {
			copy(el.Edges, start.Edges)
			eng.SetSeed(SampleSeed(attemptSeed, i))
			eng.Reset(el)
			swap.RunEngine(eng)
			return SignatureOfEdges(el.Edges), nil
		})
	if err == nil {
		t.Fatal("unconstrained chain passed the connected gate without leaking")
	}
	if !strings.Contains(err.Error(), "left the enumerated space") {
		t.Fatalf("leak reported as %v, want an out-of-space error", err)
	}
}

// TestConnectedGateRejectsFrozenChain is the second rejection
// direction: a connectivity-preserving chain that over-rejects must
// fail the chi-square. The modeled bug is an acceptance layer that
// refuses every proposal touching a spanning-tree edge — on the
// repaired {2×6} start (a 6-cycle, where 5 of 6 edges are tree edges
// and every double-edge swap touches at least one) such a chain never
// moves, so every draw is the start state. The rejection is
// deterministic: all mass on one of 60 states gives stat =
// samples·(states−1) exactly, every attempt.
func TestConnectedGateRejectsFrozenChain(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{2: 6})
	full, err := EnumerateSimpleGraphs(dist, "full")
	if err != nil {
		t.Fatal(err)
	}
	space, err := ConnectedSubspace(full, int(dist.NumVertices()), "conn")
	if err != nil {
		t.Fatal(err)
	}
	start, err := connected.Realize(dist)
	if err != nil {
		t.Fatal(err)
	}
	frozen := SignatureOfEdges(start.Edges)
	if _, ok := space.Index[frozen]; !ok {
		t.Fatal("repaired start is not in the connected subspace")
	}
	cfg := Config{Seed: 1, Workers: 1, Samples: 200}
	res, err := CheckUniformity("frozen-connected", space, 200, cfg,
		func(attemptSeed uint64, i int) (string, error) { return frozen, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("frozen connected chain passed the uniformity gate")
	}
	if len(res.Attempts) != cfg.maxAttempts() {
		t.Errorf("rejection after %d attempts, want the full retry budget %d", len(res.Attempts), cfg.maxAttempts())
	}
	for _, a := range res.Attempts {
		// samples·(states−1) up to float rounding (200/60 is not exact).
		if math.Abs(a.Stat-200*59) > 1e-6 {
			t.Errorf("attempt stat = %v, want %d", a.Stat, 200*59)
		}
		if a.P >= res.Alpha {
			t.Errorf("attempt p = %v not below alpha %v", a.P, res.Alpha)
		}
	}
}

// TestStatcheckSeedStreamsDomainSeparated is the regression test for
// the attempt-seed collision: before DomainSeed, every registry check
// run under one Config.Seed derived identical attempt seeds, so two
// chains with the same per-draw structure replayed correlated
// randomness. The harness must hand different checks disjoint streams.
func TestStatcheckSeedStreamsDomainSeparated(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{1: 6})
	space, err := EnumerateSimpleGraphs(dist, "k6")
	if err != nil {
		t.Fatal(err)
	}
	sig := space.States[0]
	// The frozen draw fails every attempt, so each run records exactly
	// maxAttempts attempt seeds as runAttempts derived them.
	capture := func(name string) []uint64 {
		var seeds []uint64
		cfg := Config{Seed: 77, Workers: 1, Samples: 3, MaxAttempts: 2}
		if _, err := CheckUniformity(name, space, 3, cfg, func(attemptSeed uint64, i int) (string, error) {
			if i == 0 {
				seeds = append(seeds, attemptSeed)
			}
			return sig, nil
		}); err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	a, b := capture("check-a"), capture("check-b")
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("captured %d/%d attempt seeds, want 2/2", len(a), len(b))
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("attempt %d: both checks got seed %d; streams are not domain-separated", i, a[i])
		}
	}
	// The full per-draw streams must be disjoint too, not merely offset:
	// a collision anywhere in the first 4096 draws of any attempt pair
	// would mean two checks replay a shared sample seed.
	seen := make(map[uint64]bool, 2*4096)
	for _, as := range a {
		for i := 0; i < 4096; i++ {
			seen[SampleSeed(as, i)] = true
		}
	}
	for _, bs := range b {
		for i := 0; i < 4096; i++ {
			if s := SampleSeed(bs, i); seen[s] {
				t.Fatalf("sample seed %d appears in both checks' streams", s)
			}
		}
	}
	if DomainSeed(77, "check-a") == DomainSeed(77, "check-b") {
		t.Error("DomainSeed ignores the check name")
	}
}
