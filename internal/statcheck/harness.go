package statcheck

import (
	"fmt"
	"math"

	"nullgraph/internal/rng"
)

// Config sizes and seeds a statistical check run.
type Config struct {
	// Samples is the draw budget per attempt; <= 0 uses the check's
	// documented default budget.
	Samples int
	// Alpha is the per-attempt significance level; <= 0 uses 1e-3.
	Alpha float64
	// MaxAttempts bounds the multi-seed retry: a check fails only when
	// every attempt independently rejects at Alpha, so under a true
	// null the flake rate is Alpha^MaxAttempts while a genuine bias —
	// which rejects with probability approaching 1 per attempt —
	// still fails deterministically. <= 0 uses 3.
	MaxAttempts int
	// Seed derives every attempt's sample seeds.
	Seed uint64
	// Workers is the sampler parallel width; <= 0 means GOMAXPROCS.
	// Deterministic runs (goldens, CI gates) should pin 1.
	Workers int
}

func (c Config) alpha() float64 {
	if c.Alpha <= 0 {
		return 1e-3
	}
	return c.Alpha
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

func (c Config) samples(def int) int {
	if c.Samples <= 0 {
		return def
	}
	return c.Samples
}

// DomainSeed folds a check's name into the top-level seed so distinct
// registry checks draw disjoint sample-seed streams. Without it every
// check run under one Config.Seed derives the same attempt seeds, so
// two chains with the same per-draw structure replay correlated
// randomness — a latent cross-check coupling the stream-separation
// regression test pins down. Byte-wise Mix64 folding keeps names with
// shared prefixes ("connected-uniformity-p5" vs "-c6") far apart.
func DomainSeed(seed uint64, name string) uint64 {
	h := rng.Mix64(seed)
	for i := 0; i < len(name); i++ {
		h = rng.Mix64(h ^ uint64(name[i]))
	}
	return h
}

// AttemptSeed derives attempt a's base seed; SampleSeed derives draw
// i's seed within an attempt. Exported so external drivers can
// reproduce any single draw of a reported run: the harness runs
// attempt a of check name under
// AttemptSeed(DomainSeed(cfg.Seed, name), a).
func AttemptSeed(seed uint64, attempt int) uint64 {
	return rng.Mix64(seed) + 0x9e3779b97f4a7c15*uint64(attempt+1)
}

// SampleSeed derives the i-th draw's seed within an attempt.
func SampleSeed(attemptSeed uint64, i int) uint64 {
	return rng.Mix64(attemptSeed) + 2654435761*uint64(i+1)
}

// Attempt records one seeded test attempt.
type Attempt struct {
	// Seed is the attempt's base seed (sample i ran under
	// SampleSeed(Seed, i)).
	Seed uint64 `json:"seed"`
	// Stat is the attempt's test statistic (chi-square value, or the
	// largest |z| for moment checks).
	Stat float64 `json:"stat"`
	// Dof is the statistic's degrees of freedom (component count for
	// moment checks).
	Dof int `json:"dof"`
	// P is the attempt's p-value.
	P float64 `json:"p"`
}

// CheckResult is the verdict of one statistical check.
type CheckResult struct {
	// Name identifies the check (see Checks).
	Name string `json:"name"`
	// Kind is the statistic family: "uniformity",
	// "weighted-uniformity", "bernoulli-marginals", or "class-moments".
	Kind string `json:"kind"`
	// States is the exact state-space size for uniformity checks (0
	// otherwise).
	States int `json:"states,omitempty"`
	// Cells is the marginal/component count for non-uniformity checks
	// (0 otherwise).
	Cells int `json:"cells,omitempty"`
	// Samples is the per-attempt draw budget used.
	Samples int `json:"samples"`
	// Alpha is the per-attempt significance level.
	Alpha float64 `json:"alpha"`
	// Attempts lists every attempt run, in order; the check passes as
	// soon as one attempt's P >= Alpha.
	Attempts []Attempt `json:"attempts"`
	// Pass is the verdict.
	Pass bool `json:"pass"`
}

// P returns the final attempt's p-value (the deciding one).
func (r *CheckResult) P() float64 {
	if len(r.Attempts) == 0 {
		return math.NaN()
	}
	return r.Attempts[len(r.Attempts)-1].P
}

// runAttempts drives the retry policy: attempts run under derived
// seeds until one accepts (P >= alpha) or the budget is exhausted.
// Seeds are domain-separated by the check's name, so two registry
// checks sharing one Config.Seed never replay each other's streams.
func runAttempts(res *CheckResult, cfg Config, attempt func(seed uint64) (Attempt, error)) (*CheckResult, error) {
	alpha := cfg.alpha()
	res.Alpha = alpha
	base := DomainSeed(cfg.Seed, res.Name)
	for a := 0; a < cfg.maxAttempts(); a++ {
		att, err := attempt(AttemptSeed(base, a))
		if err != nil {
			return nil, fmt.Errorf("statcheck: %s attempt %d: %w", res.Name, a, err)
		}
		res.Attempts = append(res.Attempts, att)
		if att.P >= alpha {
			res.Pass = true
			return res, nil
		}
	}
	res.Pass = false
	return res, nil
}

// CheckUniformity draws `samples` states via draw (one canonical
// signature per call) and chi-squares the observed state counts
// against the uniform distribution over space. A draw outside the
// space is a correctness error, not a statistical rejection.
//
// draw receives the attempt's base seed and the draw index; stateless
// samplers derive SampleSeed(attemptSeed, i), while session-style
// samplers (a reused engine running its batch schedule) key the
// session on attemptSeed and the sample on i.
func CheckUniformity(name string, space *Space, defaultSamples int, cfg Config, draw func(attemptSeed uint64, i int) (string, error)) (*CheckResult, error) {
	samples := cfg.samples(defaultSamples)
	res := &CheckResult{Name: name, Kind: "uniformity", States: space.NumStates(), Samples: samples}
	return runAttempts(res, cfg, func(seed uint64) (Attempt, error) {
		counts := make([]int64, space.NumStates())
		for i := 0; i < samples; i++ {
			sig, err := draw(seed, i)
			if err != nil {
				return Attempt{}, err
			}
			idx, ok := space.Index[sig]
			if !ok {
				return Attempt{}, fmt.Errorf("sample %d left the enumerated space %q (%d states)", i, space.Name, space.NumStates())
			}
			counts[idx]++
		}
		stat, dof, p, err := ChiSquareUniform(counts)
		if err != nil {
			return Attempt{}, err
		}
		return Attempt{Seed: seed, Stat: stat, Dof: dof, P: p}, nil
	})
}

// CheckWeightedUniformity is CheckUniformity against a non-uniform
// exact target: probs[i] is the target probability of state i (aligned
// with space.States, summing to 1). The stub-labeled cells use it —
// their target over distinct graphs weights each state by its
// stub-matching count, so "uniform over stub matchings" is non-uniform
// over graphs as soon as loops or multi-edges appear.
func CheckWeightedUniformity(name string, space *Space, probs []float64, defaultSamples int, cfg Config, draw func(attemptSeed uint64, i int) (string, error)) (*CheckResult, error) {
	if len(probs) != space.NumStates() {
		return nil, fmt.Errorf("statcheck: %d target probabilities vs %d states", len(probs), space.NumStates())
	}
	samples := cfg.samples(defaultSamples)
	res := &CheckResult{Name: name, Kind: "weighted-uniformity", States: space.NumStates(), Samples: samples}
	return runAttempts(res, cfg, func(seed uint64) (Attempt, error) {
		counts := make([]int64, space.NumStates())
		for i := 0; i < samples; i++ {
			sig, err := draw(seed, i)
			if err != nil {
				return Attempt{}, err
			}
			idx, ok := space.Index[sig]
			if !ok {
				return Attempt{}, fmt.Errorf("sample %d left the enumerated space %q (%d states)", i, space.Name, space.NumStates())
			}
			counts[idx]++
		}
		expected := make([]float64, len(probs))
		for k, p := range probs {
			expected[k] = p * float64(samples)
		}
		stat, dof, err := ChiSquareStat(counts, expected)
		if err != nil {
			return Attempt{}, err
		}
		return Attempt{Seed: seed, Stat: stat, Dof: dof, P: ChiSquareP(stat, dof)}, nil
	})
}

// CheckBernoulliMarginals draws `samples` graphs via draw, which must
// set hit[k] for every marginal k that occurred in the sample, and
// tests the per-marginal success counts against probs (each strictly
// inside (0,1)) with the K-cell binomial chi-square.
func CheckBernoulliMarginals(name string, probs []float64, defaultSamples int, cfg Config, draw func(attemptSeed uint64, i int, hit []bool) error) (*CheckResult, error) {
	samples := cfg.samples(defaultSamples)
	res := &CheckResult{Name: name, Kind: "bernoulli-marginals", Cells: len(probs), Samples: samples}
	return runAttempts(res, cfg, func(seed uint64) (Attempt, error) {
		successes := make([]int64, len(probs))
		hit := make([]bool, len(probs))
		for i := 0; i < samples; i++ {
			clear(hit)
			if err := draw(seed, i, hit); err != nil {
				return Attempt{}, err
			}
			for k, h := range hit {
				if h {
					successes[k]++
				}
			}
		}
		stat, dof, p, err := BernoulliMarginalsStat(successes, int64(samples), probs)
		if err != nil {
			return Attempt{}, err
		}
		return Attempt{Seed: seed, Stat: stat, Dof: dof, P: p}, nil
	})
}

// CheckClassMoments draws `samples` observations of per-component
// totals via draw (which must fill totals, one slot per component) and
// z-tests each component's sample mean against the analytic mean and
// variance. The reported statistic is the largest |z|; its p-value is
// the Šidák-combined two-sided tail over the components (an
// independence approximation — see DESIGN.md §11). Components with
// zero variance must match their mean exactly.
func CheckClassMoments(name string, mean, variance []float64, defaultSamples int, cfg Config, draw func(attemptSeed uint64, i int, totals []float64) error) (*CheckResult, error) {
	if len(mean) != len(variance) {
		return nil, fmt.Errorf("statcheck: %d means vs %d variances", len(mean), len(variance))
	}
	samples := cfg.samples(defaultSamples)
	res := &CheckResult{Name: name, Kind: "class-moments", Cells: len(mean), Samples: samples}
	return runAttempts(res, cfg, func(seed uint64) (Attempt, error) {
		sums := make([]float64, len(mean))
		totals := make([]float64, len(mean))
		for i := 0; i < samples; i++ {
			clear(totals)
			if err := draw(seed, i, totals); err != nil {
				return Attempt{}, err
			}
			for k, t := range totals {
				sums[k] += t
			}
		}
		n := float64(samples)
		maxZ := 0.0
		minP := 1.0
		for k := range mean {
			if variance[k] <= 0 {
				if sums[k]/n != mean[k] {
					return Attempt{}, fmt.Errorf("component %d: zero variance but mean %g != %g", k, sums[k]/n, mean[k])
				}
				continue
			}
			z := (sums[k]/n - mean[k]) / math.Sqrt(variance[k]/n)
			if math.Abs(z) > maxZ {
				maxZ = math.Abs(z)
			}
			if p := NormalTwoSidedP(z); p < minP {
				minP = p
			}
		}
		return Attempt{Seed: seed, Stat: maxZ, Dof: len(mean), P: SidakCombine(minP, len(mean))}, nil
	})
}
