package statcheck

import (
	"fmt"
	"sort"

	"nullgraph/internal/connected"
	"nullgraph/internal/converge"
	"nullgraph/internal/core"
	"nullgraph/internal/degseq"
	"nullgraph/internal/directed"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/graph"
	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/metrics"
	"nullgraph/internal/probgen"
	"nullgraph/internal/swap"
)

// swapChainIterations is the per-sample swap budget for undirected
// uniformity checks. The enumerable spaces have at most 6 vertices, so
// the chain's diameter is tiny; 30 iterations (the experiments
// package's long-used budget) is far past mixing on every space below.
//
// directedChainIterations is higher because the directed pair sweep is
// lazy (each legal exchange is proposed with probability 1/2 — see the
// SwapEngine doc for why that coin is load-bearing): empirically, 30
// iterations leaves measurable under-mixing on the n=4 derangement
// space (mean p ≈ 0.37 over 30 seeds), while 60+ restores the uniform
// p-value profile; 100 leaves margin for long nightly budgets.
const (
	swapChainIterations     = 30
	directedChainIterations = 100
	// spaceChainIterations is the budget of the loopy/multigraph cell
	// gates. The vertex-labeled chains are serial Metropolis-Hastings
	// sweeps with m/2 proposals per iteration, so on the 3-edge fixtures
	// one iteration is a single proposal; 60 iterations keeps even those
	// chains far past mixing on the ≤ 6-state spaces below while staying
	// cheap enough for the tier-2 budget.
	spaceChainIterations = 60
	// connectedChainIterations is the connected-chain gate budget. The
	// connectivity-preserving chain is a serial rejection sweep (m/2
	// proposals per iteration) whose acceptance rate is lower than the
	// unconstrained chain's — disconnecting proposals are rejected on
	// top of the simple-cell filters — so it gets the same 60-iteration
	// budget as the other serial sweeps, far past mixing on the 60-state
	// spaces below.
	connectedChainIterations = 60
)

// Check is one named statistical verification, runnable from tests,
// cmd/statcheck, or the nightly CI job.
type Check struct {
	// Name is the stable identifier (-space flag, report entries).
	Name string
	// Description says what distributional property the check locks.
	Description string
	// DefaultSamples is the per-attempt draw budget when Config.Samples
	// is unset. See DESIGN.md §11 for how budgets are sized.
	DefaultSamples int
	// Run executes the check under cfg.
	Run func(cfg Config) (*CheckResult, error)
}

// Checks returns the registry of built-in checks, in report order.
// Every sampler family the repo ships is represented: the undirected
// swap chain (three enumerable degree sequences), the public
// shuffle-session pipeline, the directed swap chain (including the
// triangle-reversal ergodicity case), edge-skipping Bernoulli
// marginals, and probgen expected-degree fidelity.
func Checks() []Check {
	return []Check{
		{
			Name:           "swap-matchings-k6",
			Description:    "swap-chain uniformity over the 15 perfect matchings of K6 (1-regular, n=6)",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runSwapUniformity(cfg, "swap-matchings-k6", map[int64]int64{1: 6}, 3000)
			},
		},
		{
			Name:           "swap-cycles-c5",
			Description:    "swap-chain uniformity over the 12 labeled 5-cycles (2-regular, n=5)",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runSwapUniformity(cfg, "swap-cycles-c5", map[int64]int64{2: 5}, 3000)
			},
		},
		{
			Name:           "swap-paths-p5",
			Description:    "swap-chain uniformity over the 7 simple graphs with degrees {1,1,2,2,2}",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runSwapUniformity(cfg, "swap-paths-p5", map[int64]int64{1: 2, 2: 3}, 3000)
			},
		},
		{
			Name:           "space-loopy-stub",
			Description:    "loopy stub-labeled chain against the stub-matching-weighted target over the 5 loopy graphs with degrees {2,2,1,1}",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runSpaceChainUniformity(cfg, "space-loopy-stub", map[int64]int64{2: 2, 1: 2}, graph.LoopyStub, 3000)
			},
		},
		{
			Name:           "space-loopy-vertex",
			Description:    "loopy vertex-labeled MH chain uniformity over the 5 loopy graphs with degrees {2,2,1,1}",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runSpaceChainUniformity(cfg, "space-loopy-vertex", map[int64]int64{2: 2, 1: 2}, graph.LoopyVertex, 3000)
			},
		},
		{
			Name:           "space-multigraph-stub",
			Description:    "configuration-model chain against the stub-matching-weighted target over the 5 multigraphs with degrees {2,2,2}",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runSpaceChainUniformity(cfg, "space-multigraph-stub", map[int64]int64{2: 3}, graph.MultigraphStub, 3000)
			},
		},
		{
			Name:           "space-multigraph-vertex",
			Description:    "multigraph vertex-labeled MH chain uniformity over the 5 multigraphs with degrees {2,2,2}",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runSpaceChainUniformity(cfg, "space-multigraph-vertex", map[int64]int64{2: 3}, graph.MultigraphVertex, 3000)
			},
		},
		{
			Name:           "connected-uniformity-p5",
			Description:    "connected-chain uniformity over the 6 connected graphs with degrees {1,1,2,2,2}",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runConnectedSwapUniformity(cfg, "connected-uniformity-p5", map[int64]int64{1: 2, 2: 3}, 3000)
			},
		},
		{
			Name:           "connected-uniformity-c6",
			Description:    "connected-chain uniformity over the 60 connected graphs with degrees {2,2,2,2,2,2} (10 of 70 states are two disjoint triangles)",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runConnectedSwapUniformity(cfg, "connected-uniformity-c6", map[int64]int64{2: 6}, 3000)
			},
		},
		{
			Name:           "shuffle-sessions-k6",
			Description:    "uniformity of core.Engine.ShuffleSample batches (session reuse + per-sample seed schedule) over K6 matchings",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runShuffleSessionUniformity(cfg, "shuffle-sessions-k6", map[int64]int64{1: 6}, 3000)
			},
		},
		{
			Name:           "shuffle-adaptive-p5",
			Description:    "uniformity of adaptive-stop ShuffleSample runs (converge monitor, floor = fixed-scan budget) over the {1,1,2,2,2} space",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runAdaptiveShuffleUniformity(cfg, "shuffle-adaptive-p5", map[int64]int64{1: 2, 2: 3}, 3000)
			},
		},
		{
			Name:           "directed-triangles-n3",
			Description:    "directed-swap uniformity over the 2 orientations of a directed triangle (ergodicity needs triangle reversal)",
			DefaultSamples: 2000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runDirectedSwapUniformity(cfg, "directed-triangles-n3", 3, 2000)
			},
		},
		{
			Name:           "directed-derangements-n4",
			Description:    "directed-swap uniformity over the 9 derangement digraphs on 4 vertices (out=in=1)",
			DefaultSamples: 3000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runDirectedSwapUniformity(cfg, "directed-derangements-n4", 4, 3000)
			},
		},
		{
			Name:           "edgeskip-marginals",
			Description:    "edge-skipping per-pair Bernoulli marginals against the analytic P[i][j] (10 pairs, n=5)",
			DefaultSamples: 4000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runEdgeskipMarginals(cfg, "edgeskip-marginals", nil, 4000)
			},
		},
		{
			Name:           "probgen-degrees",
			Description:    "probgen expected-degree fidelity: sampled per-class degree totals match the analytic Bernoulli moments",
			DefaultSamples: 2000,
			Run: func(cfg Config) (*CheckResult, error) {
				return runProbgenDegreeFidelity(cfg, "probgen-degrees", 2000)
			},
		},
	}
}

// CheckByName looks a check up in the registry.
func CheckByName(name string) (Check, bool) {
	for _, c := range Checks() {
		if c.Name == name {
			return c, true
		}
	}
	return Check{}, false
}

// CheckNames returns the registry's names, sorted.
func CheckNames() []string {
	cs := Checks()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// mustDist builds a Distribution from counts; the registry's inputs are
// compile-time constants, so failure is a programming error.
func mustDist(counts map[int64]int64) (*degseq.Distribution, error) {
	dist, err := degseq.FromCounts(counts)
	if err != nil {
		return nil, fmt.Errorf("statcheck: bad registry distribution: %w", err)
	}
	return dist, nil
}

// runSwapUniformity checks that the raw swap engine, started from a
// fixed Havel-Hakimi realization and run for swapChainIterations from
// an independent seed per draw, samples the enumerated space uniformly.
// One engine serves every draw (SetSeed + Reset), which is also the
// reuse idiom the engine documents — so the check covers it.
func runSwapUniformity(cfg Config, name string, counts map[int64]int64, defaultSamples int) (*CheckResult, error) {
	dist, err := mustDist(counts)
	if err != nil {
		return nil, err
	}
	space, err := EnumerateSimpleGraphs(dist, name)
	if err != nil {
		return nil, err
	}
	start, err := havelhakimi.Generate(dist)
	if err != nil {
		return nil, err
	}
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	eng := swap.NewEngine(el, swap.Options{
		Iterations: swapChainIterations,
		Workers:    cfg.Workers,
		Seed:       0, // per-draw via SetSeed
	})
	defer eng.Close()
	return CheckUniformity(name, space, defaultSamples, cfg, func(attemptSeed uint64, i int) (string, error) {
		copy(el.Edges, start.Edges)
		eng.SetSeed(SampleSeed(attemptSeed, i))
		eng.Reset(el)
		swap.RunEngine(eng)
		return SignatureOfEdges(el.Edges), nil
	})
}

// runSpaceChainUniformity is the per-cell gate of the space matrix:
// the cell's swap chain, started from an enumerated member and run for
// spaceChainIterations from an independent seed per draw, must sample
// the cell's exact target — uniform over distinct graphs for the
// vertex-labeled cells, stub-matching-weighted for the stub-labeled
// ones. The degree sequences are chosen so the double-edge-swap chain
// is irreducible on the cell (loopy spaces are disconnected for some
// sequences, e.g. all-degree-2 ones whose all-loop state is isolated).
func runSpaceChainUniformity(cfg Config, name string, counts map[int64]int64, sp graph.Space, defaultSamples int) (*CheckResult, error) {
	dist, err := mustDist(counts)
	if err != nil {
		return nil, err
	}
	enum, err := EnumerateSpaceGraphs(dist, sp, name)
	if err != nil {
		return nil, err
	}
	start := enum.Start
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	eng := swap.NewEngine(el, swap.Options{
		Space:      sp,
		Iterations: spaceChainIterations,
		Workers:    cfg.Workers,
		Seed:       0, // per-draw via SetSeed
	})
	defer eng.Close()
	draw := func(attemptSeed uint64, i int) (string, error) {
		copy(el.Edges, start.Edges)
		eng.SetSeed(SampleSeed(attemptSeed, i))
		eng.Reset(el)
		swap.RunEngine(eng)
		return SignatureOfEdges(el.Edges), nil
	}
	if enum.StubProbs != nil {
		return CheckWeightedUniformity(name, enum.Space, enum.StubProbs, defaultSamples, cfg, draw)
	}
	return CheckUniformity(name, enum.Space, defaultSamples, cfg, draw)
}

// runConnectedSwapUniformity is the connected sampler's uniformity
// gate: the connectivity-preserving chain (Options.Connected), started
// from a connected.Realize seed graph and run for
// connectedChainIterations from an independent seed per draw, must
// sample the *connected subspace* of the enumerated cell uniformly.
// The target space deliberately excludes the disconnected states, so
// the gate rejects in both failure directions: a chain that leaks a
// disconnected graph leaves the enumerated space (a hard error from
// CheckUniformity, not a p-value), while a chain that over-rejects —
// freezing on part of the connected subspace — fails the chi-square.
func runConnectedSwapUniformity(cfg Config, name string, counts map[int64]int64, defaultSamples int) (*CheckResult, error) {
	dist, err := mustDist(counts)
	if err != nil {
		return nil, err
	}
	full, err := EnumerateSimpleGraphs(dist, name+"-full")
	if err != nil {
		return nil, err
	}
	space, err := ConnectedSubspace(full, int(dist.NumVertices()), name)
	if err != nil {
		return nil, err
	}
	start, err := connected.Realize(dist)
	if err != nil {
		return nil, err
	}
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	eng := swap.NewEngine(el, swap.Options{
		Connected:  true,
		Iterations: connectedChainIterations,
		Workers:    cfg.Workers,
		Seed:       0, // per-draw via SetSeed
	})
	defer eng.Close()
	return CheckUniformity(name, space, defaultSamples, cfg, func(attemptSeed uint64, i int) (string, error) {
		copy(el.Edges, start.Edges)
		eng.SetSeed(SampleSeed(attemptSeed, i))
		eng.Reset(el)
		swap.RunEngine(eng)
		return SignatureOfEdges(el.Edges), nil
	})
}

// runShuffleSessionUniformity checks the public pipeline surface: a
// reused core.Engine whose ShuffleSample batch schedule (sample index →
// derived seed) produces uniform draws. This locks the session seed
// schedule itself, not just the underlying chain.
func runShuffleSessionUniformity(cfg Config, name string, counts map[int64]int64, defaultSamples int) (*CheckResult, error) {
	dist, err := mustDist(counts)
	if err != nil {
		return nil, err
	}
	space, err := EnumerateSimpleGraphs(dist, name)
	if err != nil {
		return nil, err
	}
	start, err := havelhakimi.Generate(dist)
	if err != nil {
		return nil, err
	}
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	var eng *core.Engine
	var engSeed uint64
	defer func() {
		if eng != nil {
			eng.Close()
		}
	}()
	return CheckUniformity(name, space, defaultSamples, cfg, func(attemptSeed uint64, i int) (string, error) {
		if eng == nil || engSeed != attemptSeed {
			if eng != nil {
				eng.Close()
			}
			eng = core.NewEngine(core.Options{
				Workers:        cfg.Workers,
				Seed:           attemptSeed,
				SwapIterations: swapChainIterations,
			})
			engSeed = attemptSeed
		}
		copy(el.Edges, start.Edges)
		if _, err := eng.ShuffleSample(el, uint64(i), nil); err != nil {
			return "", err
		}
		return SignatureOfEdges(el.Edges), nil
	})
}

// runAdaptiveShuffleUniformity is the adaptive stopper's uniformity
// gate: ShuffleSample draws with a StopPolicy whose Floor equals the
// fixed-scan budget must stay uniform even though each sample's total
// iteration count now depends on its own trace. The floor guarantees
// every sample is past mixing before the monitor may fire (the
// converge tests pin that the stopper never fires inside the floor);
// the draw itself re-asserts it so a floor regression fails loudly
// here too. Growth is dense (1.05) so checkpoints — and hence
// state-dependent stop opportunities — are as frequent as the
// schedule allows, the adversarial setting for stopping-time bias.
func runAdaptiveShuffleUniformity(cfg Config, name string, counts map[int64]int64, defaultSamples int) (*CheckResult, error) {
	dist, err := mustDist(counts)
	if err != nil {
		return nil, err
	}
	space, err := EnumerateSimpleGraphs(dist, name)
	if err != nil {
		return nil, err
	}
	start, err := havelhakimi.Generate(dist)
	if err != nil {
		return nil, err
	}
	el := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
	var eng *core.Engine
	var engSeed uint64
	defer func() {
		if eng != nil {
			eng.Close()
		}
	}()
	return CheckUniformity(name, space, defaultSamples, cfg, func(attemptSeed uint64, i int) (string, error) {
		if eng == nil || engSeed != attemptSeed {
			if eng != nil {
				eng.Close()
			}
			eng = core.NewEngine(core.Options{
				Workers: cfg.Workers,
				Seed:    attemptSeed,
				StopPolicy: &converge.Policy{
					Floor:  swapChainIterations,
					Budget: 2 * swapChainIterations,
					Growth: 1.05,
				},
			})
			engSeed = attemptSeed
		}
		copy(el.Edges, start.Edges)
		res, err := eng.ShuffleSample(el, uint64(i), nil)
		if err != nil {
			return "", err
		}
		if res.Stop == nil || res.Stop.Policy != "adaptive" {
			return "", fmt.Errorf("adaptive draw missing stop report: %+v", res.Stop)
		}
		if res.Stop.Iterations < swapChainIterations {
			return "", fmt.Errorf("stopper fired at iteration %d, inside the floor %d",
				res.Stop.Iterations, swapChainIterations)
		}
		return SignatureOfEdges(el.Edges), nil
	})
}

// derangementJoint is the out=in=1 joint distribution on n vertices; its
// simple digraphs are exactly the derangements of S_n.
func derangementJoint(n int64) *directed.JointDistribution {
	return &directed.JointDistribution{Classes: []directed.JointClass{{Out: 1, In: 1, Count: n}}}
}

// runDirectedSwapUniformity checks the directed swap chain (pair
// exchanges + triangle-reversal sweeps) against the enumerated
// derangement space. n=3 is the ergodicity regression: its two states
// are connected only through triangle reversal.
func runDirectedSwapUniformity(cfg Config, name string, n int64, defaultSamples int) (*CheckResult, error) {
	d := derangementJoint(n)
	space, err := EnumerateSimpleDigraphs(d, name)
	if err != nil {
		return nil, err
	}
	start, err := directed.KleitmanWang(d)
	if err != nil {
		return nil, err
	}
	al := start.Clone()
	return CheckUniformity(name, space, defaultSamples, cfg, func(attemptSeed uint64, i int) (string, error) {
		copy(al.Arcs, start.Arcs)
		directed.SwapArcs(al, directed.SwapOptions{
			Iterations: directedChainIterations,
			Workers:    cfg.Workers,
			Seed:       SampleSeed(attemptSeed, i),
		})
		return SignatureOfArcs(al.Arcs), nil
	})
}

// edgeskipFixture is the shared input of the marginals check: a 5-vertex
// distribution with two degree classes and a hand-picked probability
// matrix strictly inside (0,1), so every one of the 10 vertex pairs is a
// testable Bernoulli marginal.
func edgeskipFixture() (*degseq.Distribution, *probgen.Matrix, error) {
	dist, err := mustDist(map[int64]int64{1: 3, 2: 2})
	if err != nil {
		return nil, nil, err
	}
	m := probgen.NewMatrix(2)
	m.Set(0, 0, 0.25)
	m.Set(0, 1, 0.5)
	m.Set(1, 1, 0.75)
	return dist, m, nil
}

// runEdgeskipMarginals checks Algorithm IV.2's per-pair Bernoulli
// marginals: every vertex pair (u, v) must be an edge with exactly
// probability P[class(u)][class(v)]. perturb, when non-nil, modifies the
// probability vector the *statistic* expects (not the sampler's input) —
// the biased-direction tests use it to prove the harness rejects a
// mismatched model.
func runEdgeskipMarginals(cfg Config, name string, perturb func(probs []float64), defaultSamples int) (*CheckResult, error) {
	dist, m, err := edgeskipFixture()
	if err != nil {
		return nil, err
	}
	n := int(dist.NumVertices())
	offsets := dist.VertexOffsets(1)

	// Pair index k ↔ vertex pair (u, v), u < v, in lexicographic order.
	type pair struct{ u, v int32 }
	var pairs []pair
	var probs []float64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			ci := degseq.ClassOfVertex(offsets, int64(u))
			cj := degseq.ClassOfVertex(offsets, int64(v))
			pairs = append(pairs, pair{int32(u), int32(v)})
			probs = append(probs, m.At(ci, cj))
		}
	}
	pairIndex := make(map[uint64]int, len(pairs))
	for k, pr := range pairs {
		pairIndex[graph.Edge{U: pr.u, V: pr.v}.Key()] = k
	}
	if perturb != nil {
		perturb(probs)
	}

	gen := edgeskip.NewGenerator(edgeskip.Options{Workers: cfg.Workers})
	return CheckBernoulliMarginals(name, probs, defaultSamples, cfg, func(attemptSeed uint64, i int, hit []bool) error {
		el, err := gen.Generate(dist, m, SampleSeed(attemptSeed, i), nil)
		if err != nil {
			return err
		}
		for _, e := range el.Edges {
			k, ok := pairIndex[e.Key()]
			if !ok {
				return fmt.Errorf("edge %v outside the pair space", e)
			}
			hit[k] = true
		}
		return nil
	})
}

// probgenFixture is the degree-fidelity check's input: three degree
// classes whose probgen matrix stays strictly inside (0,1).
func probgenFixture() (*degseq.Distribution, *probgen.Matrix, error) {
	dist, err := mustDist(map[int64]int64{1: 4, 2: 3, 3: 2})
	if err != nil {
		return nil, nil, err
	}
	m := probgen.Generate(dist, 1)
	m.Clamp()
	return dist, m, nil
}

// runProbgenDegreeFidelity samples graphs from probgen's analytic matrix
// through the edge-skipping generator and z-tests each class's total
// degree against the exact Bernoulli moments. Because probgen's matrix
// is constructed so that expected class degrees equal the target
// degrees (row residuals ≈ 0), this locks expected-degree fidelity of
// the whole probgen → edgeskip pipeline.
func runProbgenDegreeFidelity(cfg Config, name string, defaultSamples int) (*CheckResult, error) {
	dist, m, err := probgenFixture()
	if err != nil {
		return nil, err
	}
	mean, variance := metrics.BernoulliClassDegreeMoments(dist, m)
	offsets := dist.VertexOffsets(1)
	gen := edgeskip.NewGenerator(edgeskip.Options{Workers: cfg.Workers})
	return CheckClassMoments(name, mean, variance, defaultSamples, cfg, func(attemptSeed uint64, i int, totals []float64) error {
		el, err := gen.Generate(dist, m, SampleSeed(attemptSeed, i), nil)
		if err != nil {
			return err
		}
		for _, e := range el.Edges {
			totals[degseq.ClassOfVertex(offsets, int64(e.U))]++
			totals[degseq.ClassOfVertex(offsets, int64(e.V))]++
		}
		return nil
	})
}
