package statcheck

import (
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/directed"
	"nullgraph/internal/graph"
)

func mustCounts(t *testing.T, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	dist, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return dist
}

// TestEnumerateSimpleGraphsCounts pins the enumerator against known
// state-space sizes.
func TestEnumerateSimpleGraphsCounts(t *testing.T) {
	cases := []struct {
		name   string
		counts map[int64]int64
		want   int
	}{
		// Perfect matchings of K6: 5·3·1.
		{"k6-matchings", map[int64]int64{1: 6}, 15},
		// Labeled 2-regular graphs on 5 vertices = 5-cycles: 4!/2.
		{"c5-cycles", map[int64]int64{2: 5}, 12},
		// Degrees {1,1,2,2,2}: 6 labeled 4-paths + (triangle ∪ edge).
		{"p5-paths", map[int64]int64{1: 2, 2: 3}, 7},
		// K4: the unique 3-regular graph on 4 vertices.
		{"k4", map[int64]int64{3: 4}, 1},
		// Single edge between two degree-1 vertices.
		{"one-edge", map[int64]int64{1: 2}, 1},
		// 4-cycles on 4 labeled vertices: 3.
		{"c4", map[int64]int64{2: 4}, 3},
	}
	for _, c := range cases {
		space, err := EnumerateSimpleGraphs(mustCounts(t, c.counts), c.name)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if space.NumStates() != c.want {
			t.Errorf("%s: %d states, want %d", c.name, space.NumStates(), c.want)
		}
		// Index must invert States.
		for i, sig := range space.States {
			if space.Index[sig] != i {
				t.Errorf("%s: index broken at %d", c.name, i)
			}
		}
	}
}

func TestEnumerateSimpleGraphsStateDegrees(t *testing.T) {
	// Every enumerated state of {1,1,2,2,2} must realize the sequence.
	dist := mustCounts(t, map[int64]int64{1: 2, 2: 3})
	space, err := EnumerateSimpleGraphs(dist, "p5")
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := dist.ToDegrees()
	for _, sig := range space.States {
		deg := make([]int64, len(wantDeg))
		if len(sig)%8 != 0 {
			t.Fatalf("signature length %d not a multiple of 8", len(sig))
		}
		for off := 0; off < len(sig); off += 8 {
			var k uint64
			for b := 0; b < 8; b++ {
				k |= uint64(sig[off+b]) << (8 * b)
			}
			e := graph.EdgeFromKey(k)
			deg[e.U]++
			deg[e.V]++
		}
		for v := range deg {
			if deg[v] != wantDeg[v] {
				t.Fatalf("state degree mismatch at vertex %d: %d != %d", v, deg[v], wantDeg[v])
			}
		}
	}
}

func TestEnumerateSimpleGraphsErrors(t *testing.T) {
	// Non-realizable: one odd-degree vertex alone.
	if _, err := EnumerateSimpleGraphs(mustCounts(t, map[int64]int64{1: 1, 2: 2}), "odd"); err == nil {
		t.Error("odd stub total accepted")
	}
	// Not realizable as a simple graph: degree exceeds n-1.
	if _, err := EnumerateSimpleGraphs(mustCounts(t, map[int64]int64{3: 2}), "too-dense"); err == nil {
		t.Error("degree > n-1 accepted")
	}
	// Vertex limit guard.
	if _, err := EnumerateSimpleGraphs(mustCounts(t, map[int64]int64{1: 100}), "huge"); err == nil {
		t.Error("100 vertices accepted past the enumeration limit")
	}
}

func TestEnumerateSimpleDigraphsCounts(t *testing.T) {
	// out=in=1 on n vertices ⇒ derangements of S_n: 0, 1, 2, 9, 44.
	wants := map[int64]int{2: 1, 3: 2, 4: 9, 5: 44}
	for n, want := range wants {
		space, err := EnumerateSimpleDigraphs(derangementJoint(n), "derangements")
		if err != nil {
			t.Errorf("n=%d: %v", n, err)
			continue
		}
		if space.NumStates() != want {
			t.Errorf("n=%d: %d states, want %d", n, space.NumStates(), want)
		}
	}
	// out=in=2 on 3 vertices: both arcs between every vertex pair — one
	// state (the complete digraph K3*).
	d := &directed.JointDistribution{Classes: []directed.JointClass{{Out: 2, In: 2, Count: 3}}}
	space, err := EnumerateSimpleDigraphs(d, "k3-complete")
	if err != nil {
		t.Fatal(err)
	}
	if space.NumStates() != 1 {
		t.Errorf("complete digraph space: %d states, want 1", space.NumStates())
	}
}

func TestEnumerateSimpleDigraphsErrors(t *testing.T) {
	// Unbalanced stubs.
	bad := &directed.JointDistribution{Classes: []directed.JointClass{{Out: 2, In: 1, Count: 3}}}
	if _, err := EnumerateSimpleDigraphs(bad, "unbalanced"); err == nil {
		t.Error("unbalanced joint sequence accepted")
	}
	// No simple realization: out-degree exceeds n-1 (with loops barred).
	dense := &directed.JointDistribution{Classes: []directed.JointClass{{Out: 2, In: 2, Count: 2}}}
	if _, err := EnumerateSimpleDigraphs(dense, "dense"); err == nil {
		t.Error("out-degree > n-1 accepted")
	}
	// Vertex limit guard.
	if _, err := EnumerateSimpleDigraphs(derangementJoint(50), "huge"); err == nil {
		t.Error("50 vertices accepted past the enumeration limit")
	}
}

func TestSignatureCanonicalization(t *testing.T) {
	// Edge order and endpoint order must not matter.
	a := SignatureOfEdges([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	b := SignatureOfEdges([]graph.Edge{{U: 3, V: 2}, {U: 1, V: 0}})
	if a != b {
		t.Error("signature depends on edge/endpoint order")
	}
	// Arc signatures are orientation-sensitive.
	fwd := SignatureOfArcs([]directed.Arc{{From: 0, To: 1}})
	rev := SignatureOfArcs([]directed.Arc{{From: 1, To: 0}})
	if fwd == rev {
		t.Error("arc signature lost orientation")
	}
}
