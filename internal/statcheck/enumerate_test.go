package statcheck

import (
	"math"
	"sort"
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/directed"
	"nullgraph/internal/graph"
)

func mustCounts(t *testing.T, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	dist, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return dist
}

// TestEnumerateSimpleGraphsCounts pins the enumerator against known
// state-space sizes.
func TestEnumerateSimpleGraphsCounts(t *testing.T) {
	cases := []struct {
		name   string
		counts map[int64]int64
		want   int
	}{
		// Perfect matchings of K6: 5·3·1.
		{"k6-matchings", map[int64]int64{1: 6}, 15},
		// Labeled 2-regular graphs on 5 vertices = 5-cycles: 4!/2.
		{"c5-cycles", map[int64]int64{2: 5}, 12},
		// Degrees {1,1,2,2,2}: 6 labeled 4-paths + (triangle ∪ edge).
		{"p5-paths", map[int64]int64{1: 2, 2: 3}, 7},
		// K4: the unique 3-regular graph on 4 vertices.
		{"k4", map[int64]int64{3: 4}, 1},
		// Single edge between two degree-1 vertices.
		{"one-edge", map[int64]int64{1: 2}, 1},
		// 4-cycles on 4 labeled vertices: 3.
		{"c4", map[int64]int64{2: 4}, 3},
	}
	for _, c := range cases {
		space, err := EnumerateSimpleGraphs(mustCounts(t, c.counts), c.name)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if space.NumStates() != c.want {
			t.Errorf("%s: %d states, want %d", c.name, space.NumStates(), c.want)
		}
		// Index must invert States.
		for i, sig := range space.States {
			if space.Index[sig] != i {
				t.Errorf("%s: index broken at %d", c.name, i)
			}
		}
	}
}

func TestEnumerateSimpleGraphsStateDegrees(t *testing.T) {
	// Every enumerated state of {1,1,2,2,2} must realize the sequence.
	dist := mustCounts(t, map[int64]int64{1: 2, 2: 3})
	space, err := EnumerateSimpleGraphs(dist, "p5")
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := dist.ToDegrees()
	for _, sig := range space.States {
		deg := make([]int64, len(wantDeg))
		if len(sig)%8 != 0 {
			t.Fatalf("signature length %d not a multiple of 8", len(sig))
		}
		for off := 0; off < len(sig); off += 8 {
			var k uint64
			for b := 0; b < 8; b++ {
				k |= uint64(sig[off+b]) << (8 * b)
			}
			e := graph.EdgeFromKey(k)
			deg[e.U]++
			deg[e.V]++
		}
		for v := range deg {
			if deg[v] != wantDeg[v] {
				t.Fatalf("state degree mismatch at vertex %d: %d != %d", v, deg[v], wantDeg[v])
			}
		}
	}
}

func TestEnumerateSimpleGraphsErrors(t *testing.T) {
	// Non-realizable: one odd-degree vertex alone.
	if _, err := EnumerateSimpleGraphs(mustCounts(t, map[int64]int64{1: 1, 2: 2}), "odd"); err == nil {
		t.Error("odd stub total accepted")
	}
	// Not realizable as a simple graph: degree exceeds n-1.
	if _, err := EnumerateSimpleGraphs(mustCounts(t, map[int64]int64{3: 2}), "too-dense"); err == nil {
		t.Error("degree > n-1 accepted")
	}
	// Vertex limit guard.
	if _, err := EnumerateSimpleGraphs(mustCounts(t, map[int64]int64{1: 100}), "huge"); err == nil {
		t.Error("100 vertices accepted past the enumeration limit")
	}
}

// TestEnumerateSpaceGraphsCounts pins the space-matrix enumerator
// against hand-counted cells.
func TestEnumerateSpaceGraphsCounts(t *testing.T) {
	cases := []struct {
		name   string
		counts map[int64]int64
		space  graph.Space
		want   int
	}{
		// Degrees {1,1,2,2} loopy: 2 paths, 2 single-loop states, 1
		// double-loop state.
		{"loopy-1122", map[int64]int64{1: 2, 2: 2}, graph.LoopyStub, 5},
		// Degrees {2,2,2} loopy: triangle + all-loops (the classic
		// disconnected pair — enumerable even though no swap chain
		// connects it).
		{"loopy-222", map[int64]int64{2: 3}, graph.LoopyStub, 2},
		// Degrees {2,2,2} multigraph: triangle, 3× (loop + doubled
		// edge), all-loops.
		{"multi-222", map[int64]int64{2: 3}, graph.MultigraphStub, 5},
		// Degrees {1,1,2,2} multigraph: the 5 loopy states + the doubled
		// edge between the degree-2 vertices.
		{"multi-1122", map[int64]int64{1: 2, 2: 2}, graph.MultigraphStub, 6},
		// Degrees {3,3} multigraph: triple edge, or one edge + two loops.
		{"multi-33", map[int64]int64{3: 2}, graph.MultigraphStub, 2},
	}
	for _, c := range cases {
		enum, err := EnumerateSpaceGraphs(mustCounts(t, c.counts), c.space, c.name)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if enum.Space.NumStates() != c.want {
			t.Errorf("%s: %d states, want %d", c.name, enum.Space.NumStates(), c.want)
		}
		// The representative start must be a member of the space.
		if !enum.Start.SatisfiesSpace(c.space) {
			t.Errorf("%s: start state outside its space", c.name)
		}
		if _, ok := enum.Space.Index[SignatureOfEdges(enum.Start.Edges)]; !ok {
			t.Errorf("%s: start state not among the enumerated states", c.name)
		}
	}
}

// TestEnumerateSpaceGraphsSimpleAgrees: with loops and multi-edges
// disallowed the general enumerator must reproduce the simple one.
func TestEnumerateSpaceGraphsSimpleAgrees(t *testing.T) {
	dist := mustCounts(t, map[int64]int64{1: 2, 2: 3})
	want, err := EnumerateSimpleGraphs(dist, "p5")
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []graph.Space{graph.SimpleStub, graph.SimpleVertex} {
		enum, err := EnumerateSpaceGraphs(dist, sp, "p5-general")
		if err != nil {
			t.Fatal(err)
		}
		if enum.Space.NumStates() != want.NumStates() {
			t.Fatalf("%s: %d states, want %d", sp, enum.Space.NumStates(), want.NumStates())
		}
		for i, sig := range enum.Space.States {
			if want.States[i] != sig {
				t.Fatalf("%s: state %d differs from the simple enumerator", sp, i)
			}
		}
		// Simple states all carry the same stub-matching count, so the
		// stub target degenerates to uniform.
		if sp == graph.SimpleStub {
			for i, p := range enum.StubProbs {
				if diff := p - 1/float64(want.NumStates()); diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("simple stub target not uniform at state %d: %v", i, p)
				}
			}
		}
	}
}

// TestEnumerateSpaceGraphsStubWeights pins the stub-labeled target
// distributions against hand computation: state weight
// ∏d_v!/(∏w!·∏2^ℓ), so loops and doubled edges are penalized.
func TestEnumerateSpaceGraphsStubWeights(t *testing.T) {
	sortedProbs := func(enum *SpaceEnumeration) []float64 {
		ps := append([]float64(nil), enum.StubProbs...)
		sort.Float64s(ps)
		return ps
	}
	approx := func(got, want []float64) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}

	// Loopy {1,1,2,2}: weights 4,4 (paths), 2,2 (one loop), 1 (two
	// loops); total 13.
	enum, err := EnumerateSpaceGraphs(mustCounts(t, map[int64]int64{1: 2, 2: 2}), graph.LoopyStub, "loopy-w")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1.0 / 13, 2.0 / 13, 2.0 / 13, 4.0 / 13, 4.0 / 13}; !approx(sortedProbs(enum), want) {
		t.Errorf("loopy {1,1,2,2} stub target = %v, want %v (sorted)", sortedProbs(enum), want)
	}

	// Multigraph {2,2,2}: triangle 8, loop+doubled-edge 2 each (×3),
	// all-loops 1; total 15.
	enum, err = EnumerateSpaceGraphs(mustCounts(t, map[int64]int64{2: 3}), graph.MultigraphStub, "multi-w")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1.0 / 15, 2.0 / 15, 2.0 / 15, 2.0 / 15, 8.0 / 15}; !approx(sortedProbs(enum), want) {
		t.Errorf("multigraph {2,2,2} stub target = %v, want %v (sorted)", sortedProbs(enum), want)
	}

	// Vertex-labeled cells have a uniform target: no probs attached.
	enum, err = EnumerateSpaceGraphs(mustCounts(t, map[int64]int64{2: 3}), graph.MultigraphVertex, "multi-v")
	if err != nil {
		t.Fatal(err)
	}
	if enum.StubProbs != nil {
		t.Error("vertex-labeled enumeration carries stub probabilities")
	}
}

func TestEnumerateSimpleDigraphsCounts(t *testing.T) {
	// out=in=1 on n vertices ⇒ derangements of S_n: 0, 1, 2, 9, 44.
	wants := map[int64]int{2: 1, 3: 2, 4: 9, 5: 44}
	for n, want := range wants {
		space, err := EnumerateSimpleDigraphs(derangementJoint(n), "derangements")
		if err != nil {
			t.Errorf("n=%d: %v", n, err)
			continue
		}
		if space.NumStates() != want {
			t.Errorf("n=%d: %d states, want %d", n, space.NumStates(), want)
		}
	}
	// out=in=2 on 3 vertices: both arcs between every vertex pair — one
	// state (the complete digraph K3*).
	d := &directed.JointDistribution{Classes: []directed.JointClass{{Out: 2, In: 2, Count: 3}}}
	space, err := EnumerateSimpleDigraphs(d, "k3-complete")
	if err != nil {
		t.Fatal(err)
	}
	if space.NumStates() != 1 {
		t.Errorf("complete digraph space: %d states, want 1", space.NumStates())
	}
}

func TestEnumerateSimpleDigraphsErrors(t *testing.T) {
	// Unbalanced stubs.
	bad := &directed.JointDistribution{Classes: []directed.JointClass{{Out: 2, In: 1, Count: 3}}}
	if _, err := EnumerateSimpleDigraphs(bad, "unbalanced"); err == nil {
		t.Error("unbalanced joint sequence accepted")
	}
	// No simple realization: out-degree exceeds n-1 (with loops barred).
	dense := &directed.JointDistribution{Classes: []directed.JointClass{{Out: 2, In: 2, Count: 2}}}
	if _, err := EnumerateSimpleDigraphs(dense, "dense"); err == nil {
		t.Error("out-degree > n-1 accepted")
	}
	// Vertex limit guard.
	if _, err := EnumerateSimpleDigraphs(derangementJoint(50), "huge"); err == nil {
		t.Error("50 vertices accepted past the enumeration limit")
	}
}

func TestSignatureCanonicalization(t *testing.T) {
	// Edge order and endpoint order must not matter.
	a := SignatureOfEdges([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	b := SignatureOfEdges([]graph.Edge{{U: 3, V: 2}, {U: 1, V: 0}})
	if a != b {
		t.Error("signature depends on edge/endpoint order")
	}
	// Arc signatures are orientation-sensitive.
	fwd := SignatureOfArcs([]directed.Arc{{From: 0, To: 1}})
	rev := SignatureOfArcs([]directed.Arc{{From: 1, To: 0}})
	if fwd == rev {
		t.Error("arc signature lost orientation")
	}
}
