package statcheck

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema is the stable identifier of the JSON report format
// emitted by cmd/statcheck and the nightly CI job. Any breaking change
// to the report layout must bump the version suffix.
const ReportSchema = "nullgraph/statcheck-report/v1"

// Report is the machine-readable outcome of a statcheck run.
//
// The schemaver analyzer locks this struct against
// internal/analysis/schemas.lock: field changes must travel with a
// ReportSchema bump and a lock regeneration (`make lint-fix-schemas`).
//
//nullgraph:schema ReportSchema
type Report struct {
	// Schema is always ReportSchema.
	Schema string `json:"schema"`
	// Seed is the run's base seed (checks derive attempt seeds from it).
	Seed uint64 `json:"seed"`
	// Alpha is the per-attempt significance level used.
	Alpha float64 `json:"alpha"`
	// MaxAttempts is the retry budget used.
	MaxAttempts int `json:"max_attempts"`
	// Workers is the sampler parallel width (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// SampleOverride is the per-attempt budget forced on every check,
	// or 0 when each check used its own default.
	SampleOverride int `json:"sample_override,omitempty"`
	// Checks holds each check's result, in registry order.
	Checks []CheckResult `json:"checks"`
	// Pass is the conjunction of every check's verdict.
	Pass bool `json:"pass"`
}

// RunChecks executes the named checks (all registry checks when names
// is empty) under cfg and assembles the report. Check errors (sampler
// failures, out-of-space draws) abort the run: they are correctness
// bugs, not statistical rejections.
func RunChecks(names []string, cfg Config) (*Report, error) {
	var selected []Check
	if len(names) == 0 {
		selected = Checks()
	} else {
		for _, n := range names {
			c, ok := CheckByName(n)
			if !ok {
				return nil, fmt.Errorf("statcheck: unknown check %q (have %v)", n, CheckNames())
			}
			selected = append(selected, c)
		}
	}
	rep := &Report{
		Schema:         ReportSchema,
		Seed:           cfg.Seed,
		Alpha:          cfg.alpha(),
		MaxAttempts:    cfg.maxAttempts(),
		Workers:        cfg.Workers,
		SampleOverride: max(cfg.Samples, 0),
		Pass:           true,
	}
	for _, c := range selected {
		res, err := c.Run(cfg)
		if err != nil {
			return nil, err
		}
		rep.Checks = append(rep.Checks, *res)
		if !res.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON (trailing newline
// included), the exact bytes the golden-file test locks.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
