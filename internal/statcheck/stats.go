// Package statcheck is the repo's statistical verification subsystem:
// machine-checked distribution-level correctness gates for every
// sampler the paper's claims rest on.
//
// The paper's central claim is uniformity — swap chains converge to
// the uniform distribution over the simple graphs of a fixed degree
// sequence, and edge-skipping realizes its analytic Bernoulli
// probabilities exactly — and the literature on degree-preserving
// randomization (Dutta/Fosdick/Clauset; Greenhill) stresses that swap
// samplers go wrong in ways only distribution-level tests catch. This
// package provides the three ingredients such tests need:
//
//   - exact enumerators for small state spaces (every simple graph on
//     a degree sequence, every simple digraph on a joint sequence) so
//     the target distribution is known, not approximated;
//   - proper test statistics with real p-values: chi-square
//     goodness-of-fit via the regularized incomplete gamma function,
//     the two-sample Kolmogorov-Smirnov statistic, and per-pair
//     Bernoulli marginal checks — replacing rule-of-thumb thresholds;
//   - a harness that drives any seeded sampler for N draws and returns
//     a verdict at a configured significance level, with multi-seed
//     retry so the CI flake rate is alpha^attempts while a genuine
//     bias still fails deterministically.
//
// See DESIGN.md §11 for the methodology (state spaces, significance
// levels, retry policy, and budget sizing).
package statcheck

import (
	"fmt"
	"math"
	"sort"
)

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0, accurate to ~1e-12 over
// the chi-square range (series expansion for x < a+1, Lentz continued
// fraction otherwise — the classic split).
func GammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func GammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

const (
	gammaMaxIter = 500
	gammaEps     = 1e-15
)

// gammaSeries evaluates P(a,x) by its power series
// P(a,x) = e^{-x} x^a / Γ(a) · Σ_{n>=0} x^n / (a(a+1)...(a+n)).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by the Lentz-modified
// continued fraction e^{-x} x^a / Γ(a) · 1/(x+1−a− 1·(1−a)/(x+3−a−…)).
func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareP returns the upper-tail p-value P(X > stat) of the
// chi-square distribution with dof degrees of freedom — the survival
// function Q(dof/2, stat/2). A non-positive dof or negative statistic
// returns NaN.
func ChiSquareP(stat float64, dof int) float64 {
	if dof <= 0 || stat < 0 {
		return math.NaN()
	}
	return GammaQ(float64(dof)/2, stat/2)
}

// ChiSquareStat computes the Pearson goodness-of-fit statistic
// Σ (obs−exp)²/exp over cells with positive expectation, returning the
// statistic and its degrees of freedom (cells − 1). Cells with
// non-positive expectation are rejected with an error: a model that
// predicts zero mass where observations can land needs an exact test,
// not a chi-square.
func ChiSquareStat(observed []int64, expected []float64) (stat float64, dof int, err error) {
	if len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("statcheck: %d observed cells vs %d expected", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return 0, 0, fmt.Errorf("statcheck: chi-square needs >= 2 cells, got %d", len(observed))
	}
	for i, e := range expected {
		if e <= 0 {
			return 0, 0, fmt.Errorf("statcheck: cell %d has non-positive expectation %g", i, e)
		}
		d := float64(observed[i]) - e
		stat += d * d / e
	}
	return stat, len(observed) - 1, nil
}

// ChiSquareUniform tests observed counts against the uniform
// distribution over len(observed) cells, returning the statistic, its
// dof, and the p-value.
func ChiSquareUniform(observed []int64) (stat float64, dof int, p float64, err error) {
	var n int64
	for _, c := range observed {
		if c < 0 {
			return 0, 0, 0, fmt.Errorf("statcheck: negative count %d", c)
		}
		n += c
	}
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("statcheck: no observations")
	}
	expected := make([]float64, len(observed))
	e := float64(n) / float64(len(observed))
	for i := range expected {
		expected[i] = e
	}
	stat, dof, err = ChiSquareStat(observed, expected)
	if err != nil {
		return 0, 0, 0, err
	}
	return stat, dof, ChiSquareP(stat, dof), nil
}

// BernoulliMarginalsStat tests K independent Bernoulli marginals: cell
// k observed successes out of n trials against probability probs[k].
// The statistic Σ (x_k − n·p_k)² / (n·p_k·(1−p_k)) is asymptotically
// chi-square with K degrees of freedom (each cell is a squared
// standardized binomial). Probabilities must lie strictly in (0, 1).
func BernoulliMarginalsStat(successes []int64, trials int64, probs []float64) (stat float64, dof int, p float64, err error) {
	if len(successes) != len(probs) {
		return 0, 0, 0, fmt.Errorf("statcheck: %d cells vs %d probabilities", len(successes), len(probs))
	}
	if trials <= 0 {
		return 0, 0, 0, fmt.Errorf("statcheck: non-positive trial count %d", trials)
	}
	if len(probs) == 0 {
		return 0, 0, 0, fmt.Errorf("statcheck: no marginals to test")
	}
	n := float64(trials)
	for k, pk := range probs {
		if pk <= 0 || pk >= 1 {
			return 0, 0, 0, fmt.Errorf("statcheck: marginal %d has degenerate probability %g", k, pk)
		}
		x := float64(successes[k])
		d := x - n*pk
		stat += d * d / (n * pk * (1 - pk))
	}
	dof = len(probs)
	return stat, dof, ChiSquareP(stat, dof), nil
}

// NormalTwoSidedP returns the two-sided tail probability
// P(|Z| > |z|) of a standard normal — erfc(|z|/√2).
func NormalTwoSidedP(z float64) float64 {
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}

// SidakCombine converts the smallest of k dependent-ish per-component
// p-values into a family-wise p-value under the independence
// approximation: 1 − (1−minP)^k. Conservative direction for positively
// correlated components; DESIGN.md §11 documents where it is used.
func SidakCombine(minP float64, k int) float64 {
	if k <= 0 {
		return math.NaN()
	}
	if minP < 0 {
		minP = 0
	}
	if minP > 1 {
		minP = 1
	}
	// 1 − (1−p)^k via expm1/log1p so tiny p survive cancellation.
	return -math.Expm1(float64(k) * math.Log1p(-minP))
}

// KSTwoSample computes the two-sample Kolmogorov-Smirnov statistic D
// between samples a and b and its asymptotic p-value (Smirnov
// approximation with the Stephens small-sample correction). The inputs
// are not modified.
func KSTwoSample(a, b []float64) (d, p float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, fmt.Errorf("statcheck: KS needs non-empty samples (%d, %d)", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := float64(len(as)), float64(len(bs))
	var i, j int
	for i < len(as) && j < len(bs) {
		ai, bj := as[i], bs[j]
		if ai <= bj {
			i++
		}
		if bj <= ai {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	ne := na * nb / (na + nb)
	sq := math.Sqrt(ne)
	return d, kolmogorovQ((sq + 0.12 + 0.11/sq) * d), nil
}

// kolmogorovQ is the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ_{j>=1} (−1)^{j−1} e^{−2 j² λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := math.Exp(-2 * float64(j*j) * lambda * lambda)
		sum += sign * term
		if term < 1e-18 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
