// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (each wraps the corresponding experiment in
// internal/experiments at a bench-friendly scale — run cmd/experiments
// for full-scale reports with the printed rows), plus the ablation
// benchmarks DESIGN.md calls out. Throughput benchmarks for individual
// subsystems live in their packages (internal/swap, internal/edgeskip,
// internal/hashtable, internal/permute, internal/rng, internal/chunglu).
package nullgraph

import (
	"io"
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/experiments"
	"nullgraph/internal/probgen"
)

func benchCfg(b *testing.B) experiments.Config {
	b.Helper()
	return experiments.Config{
		Workers:        0,
		Seed:           1,
		MaxVertices:    10_000,
		Trials:         1,
		SwapIterations: 8,
		SkewedOnly:     true,
	}
}

// BenchmarkTable1Datasets regenerates the Table I analog statistics.
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchCfg(b)
	cfg.SkewedOnly = false
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig1AttachmentProbabilities regenerates the Figure 1 series:
// Chung-Lu vs empirical uniform-random hub attachment probabilities.
func BenchmarkFig1AttachmentProbabilities(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig2ErasedError regenerates the Figure 2 series: erased-model
// degree distribution error.
func BenchmarkFig2ErasedError(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig3QualityComparison regenerates the Figure 3 panels:
// % error in #edges / d_max / Gini per generator.
func BenchmarkFig3QualityComparison(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig4MixingConvergence regenerates the Figure 4 curves: L1
// attachment error vs swap iterations.
func BenchmarkFig4MixingConvergence(b *testing.B) {
	cfg := benchCfg(b)
	cfg.Datasets = []string{"Meso", "as20"}
	cfg.SwapIterations = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig5EndToEnd regenerates the Figure 5 table: end-to-end
// generation times per method.
func BenchmarkFig5EndToEnd(b *testing.B) {
	cfg := benchCfg(b)
	cfg.SkewedOnly = false
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig6PerPhase regenerates the Figure 6 per-phase breakdown of
// the paper's method.
func BenchmarkFig6PerPhase(b *testing.B) {
	cfg := benchCfg(b)
	cfg.SkewedOnly = false
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkSwapScaling regenerates the §VIII-C swap-throughput worker
// sweep on the LiveJournal analog.
func BenchmarkSwapScaling(b *testing.B) {
	cfg := benchCfg(b)
	cfg.MaxVertices = 30_000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSwapScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// --- Ablations ---

func ablationDist(b *testing.B) *degseq.Distribution {
	b.Helper()
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 50_000, MinDegree: 1, MaxDegree: 2_000, Gamma: 2.1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkProbgenVsNaiveHeuristic times the paper's O(|D|²) probability
// heuristic (compare against BenchmarkProbgenVsNaiveChungLu; the
// heuristic buys its accuracy with a constant-factor slowdown).
func BenchmarkProbgenVsNaiveHeuristic(b *testing.B) {
	d := ablationDist(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probgen.Generate(d, 0)
	}
}

// BenchmarkProbgenVsNaiveChungLu times the closed-form Chung-Lu matrix.
func BenchmarkProbgenVsNaiveChungLu(b *testing.B) {
	d := ablationDist(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probgen.ChungLu(d)
	}
}

// BenchmarkGenerateEndToEnd times the full public pipeline at a
// realistic size (the number most users care about).
func BenchmarkGenerateEndToEnd(b *testing.B) {
	d := ablationDist(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Generate(d, Options{Seed: uint64(i), SwapIterations: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Graph.NumEdges()) * 8)
	}
}

// BenchmarkShuffle times one full mixing pass over an existing graph.
func BenchmarkShuffle(b *testing.B) {
	d := ablationDist(b)
	res, err := Generate(d, Options{Seed: 9, SwapIterations: 0})
	if err != nil {
		b.Fatal(err)
	}
	g := res.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shuffle(g, Options{Seed: uint64(i), SwapIterations: 1})
		b.SetBytes(int64(g.NumEdges()) * 8)
	}
}
