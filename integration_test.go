package nullgraph

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPipelineInvariantMatrix drives the full public pipeline across a
// grid of distribution shapes and checks every hard invariant: output
// simplicity, vertex count, graphicality of the realized sequence, and
// degree preservation through shuffling.
func TestPipelineInvariantMatrix(t *testing.T) {
	shapes := map[string]func(t *testing.T) *DegreeDistribution{
		"regular": func(t *testing.T) *DegreeDistribution {
			d, err := DistributionFromCounts(map[int64]int64{6: 2000})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"bimodal": func(t *testing.T) *DegreeDistribution {
			d, err := DistributionFromCounts(map[int64]int64{2: 1800, 40: 100})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"star-heavy": func(t *testing.T) *DegreeDistribution {
			d, err := DistributionFromCounts(map[int64]int64{1: 1000, 250: 4})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"powerlaw": func(t *testing.T) *DegreeDistribution {
			d, err := PowerLawDistribution(4000, 1, 300, 2.0, 11)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"with-isolated": func(t *testing.T) *DegreeDistribution {
			d, err := DistributionFromCounts(map[int64]int64{0: 500, 3: 1000})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
	for name, build := range shapes {
		t.Run(name, func(t *testing.T) {
			dist := build(t)
			res, err := Generate(dist, Options{Seed: 99, SwapIterations: 6, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			g := res.Graph
			if rep := g.CheckSimplicity(); !rep.IsSimple() {
				t.Fatalf("not simple: %+v", rep)
			}
			if g.NumVertices != int(dist.NumVertices()) {
				t.Fatalf("vertices %d, want %d", g.NumVertices, dist.NumVertices())
			}
			// The realized degree sequence is itself graphical (it is
			// realized!) and close to the target in total mass.
			realized := DistributionOf(g, 2)
			if !realized.IsGraphical() {
				t.Error("realized sequence fails Erdős–Gallai (impossible)")
			}
			gotEdges := float64(g.NumEdges())
			wantEdges := float64(dist.NumEdges())
			if wantEdges > 0 && math.Abs(gotEdges-wantEdges) > 0.10*wantEdges+5 {
				t.Errorf("edges %v, want ~%v", gotEdges, wantEdges)
			}
			// Shuffling preserves the realized degrees exactly.
			before := g.Degrees(1)
			Shuffle(g, Options{Seed: 5, SwapIterations: 4, Workers: 4})
			after := g.Degrees(1)
			for v := range before {
				if before[v] != after[v] {
					t.Fatalf("shuffle changed degree of %d", v)
				}
			}
			if rep := g.CheckSimplicity(); !rep.IsSimple() {
				t.Fatalf("shuffle broke simplicity: %+v", rep)
			}
		})
	}
}

// TestGenerateQuickProperty fuzzes small random distributions through
// the full pipeline.
func TestGenerateQuickProperty(t *testing.T) {
	f := func(seed uint16, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		counts := map[int64]int64{}
		var vertices int64
		for i, v := range raw {
			deg := int64(v%9) + 1
			cnt := int64(i%5)*7 + 3
			counts[deg] += cnt
			vertices += cnt
		}
		dist, err := DistributionFromCounts(counts)
		if err != nil {
			return false
		}
		res, err := Generate(dist, Options{Seed: uint64(seed), SwapIterations: 2, Workers: 2})
		if err != nil {
			return false
		}
		if !res.Graph.CheckSimplicity().IsSimple() {
			return false
		}
		return res.Graph.NumVertices == int(vertices)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestShuffleIsNullModelForClustering verifies the library does its
// actual job: shuffling a clustered graph destroys clustering while
// keeping degrees, which is precisely what makes it a null model.
func TestShuffleIsNullModelForClustering(t *testing.T) {
	lfrRes, err := LFR(LFRConfig{
		NumVertices: 3000, DegreeGamma: 2.3, MinDegree: 4, MaxDegree: 60,
		CommunityGamma: 1.8, MinCommunity: 40, MaxCommunity: 300,
		Mu: 0.1, SwapIterations: 2, Seed: 13, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	clustered := lfrRes.Graph
	ccBefore := GlobalClusteringCoefficient(clustered, 2)
	Shuffle(clustered, Options{Seed: 3, SwapIterations: 15, Workers: 4})
	ccAfter := GlobalClusteringCoefficient(clustered, 2)
	if ccAfter >= ccBefore/2 {
		t.Errorf("shuffle kept clustering: %v -> %v", ccBefore, ccAfter)
	}
}

// TestGenerateMatchesShuffledHavelHakimiStatistically compares this
// library's generator against the paper's uniform reference on a
// summary statistic (assortativity): both samplers must agree on the
// null ensemble's mean within noise.
func TestGenerateMatchesShuffledHavelHakimiStatistically(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	dist, err := PowerLawDistribution(2000, 1, 150, 2.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 12
	var genSum, refSum float64
	for i := 0; i < trials; i++ {
		res, err := Generate(dist, Options{Seed: uint64(3000 + i), SwapIterations: 12, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		genSum += Assortativity(res.Graph, 2)

		ref, err := HavelHakimi(dist)
		if err != nil {
			t.Fatal(err)
		}
		Shuffle(ref, Options{Seed: uint64(4000 + i), SwapIterations: 24, Workers: 2})
		refSum += Assortativity(ref, 2)
	}
	gen, ref := genSum/trials, refSum/trials
	if math.Abs(gen-ref) > 0.05 {
		t.Errorf("null-ensemble assortativity: generated %v vs uniform reference %v", gen, ref)
	}
}
