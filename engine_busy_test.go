package nullgraph

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEngineConcurrentMisuseReturnsBusy provokes genuinely overlapping
// calls on one Engine and asserts the in-use guard's contract: every
// call either succeeds or fails with ErrEngineBusy — never a third
// outcome, and (under -race) never a data race on the session's scratch
// or sample counter. The work per call is sized so that two goroutines
// released from a barrier overlap with near-certainty; the loop retries
// until at least one overlap was observed so the test cannot pass
// vacuously.
func TestEngineConcurrentMisuseReturnsBusy(t *testing.T) {
	dist, err := PowerLawDistribution(20_000, 2, 100, 2.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Options{Workers: 1, Seed: 11, SwapIterations: 8})
	defer eng.Close()

	var busy, ok atomic.Int64
	const rounds = 50
	for r := 0; r < rounds && busy.Load() == 0; r++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_, err := eng.Generate(dist)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrEngineBusy):
					busy.Add(1)
				default:
					t.Errorf("unexpected error from overlapping Generate: %v", err)
				}
			}()
		}
		close(start)
		wg.Wait()
	}
	if ok.Load() == 0 {
		t.Fatal("no Generate call succeeded")
	}
	if busy.Load() == 0 {
		t.Fatalf("no overlap observed in %d barrier rounds; guard untested", rounds)
	}
	// The rejected calls must not have consumed sample indices or wedged
	// the session: a serial call still works.
	if _, err := eng.Generate(dist); err != nil {
		t.Fatalf("engine unusable after contention: %v", err)
	}
}

// TestEngineBusyShuffleGenerateCross checks the guard covers the
// Shuffle path and the Generate/Shuffle combination on one session.
func TestEngineBusyShuffleGenerateCross(t *testing.T) {
	dist, err := PowerLawDistribution(20_000, 2, 100, 2.1, 13)
	if err != nil {
		t.Fatal(err)
	}
	seedGraph, err := HavelHakimi(dist)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Options{Workers: 1, Seed: 13, SwapIterations: 8})
	defer eng.Close()

	var busy, ok atomic.Int64
	const rounds = 50
	for r := 0; r < rounds && busy.Load() == 0; r++ {
		g := seedGraph.Clone()
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			_, err := eng.Shuffle(g)
			recordOutcome(t, err, &ok, &busy)
		}()
		go func() {
			defer wg.Done()
			<-start
			_, err := eng.Generate(dist)
			recordOutcome(t, err, &ok, &busy)
		}()
		close(start)
		wg.Wait()
	}
	if ok.Load() == 0 {
		t.Fatal("no call succeeded")
	}
	if busy.Load() == 0 {
		t.Fatalf("no overlap observed in %d barrier rounds; guard untested", rounds)
	}
}

func recordOutcome(t *testing.T, err error, ok, busy *atomic.Int64) {
	t.Helper()
	switch {
	case err == nil:
		ok.Add(1)
	case errors.Is(err, ErrEngineBusy):
		busy.Add(1)
	default:
		t.Errorf("unexpected error from overlapping call: %v", err)
	}
}
