module nullgraph

go 1.22
