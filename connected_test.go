package nullgraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomConnectedDist draws a random degree sequence on 4..12 vertices
// with minimum degree 1, rejection-sampling until it admits a connected
// realization (even stub total, graphical, enough edges to span).
func randomConnectedDist(t *testing.T, r *rand.Rand) *DegreeDistribution {
	t.Helper()
	for tries := 0; tries < 1000; tries++ {
		n := 4 + r.Intn(9)
		counts := map[int64]int64{}
		for v := 0; v < n; v++ {
			counts[int64(1+r.Intn(n-1))]++
		}
		dist, err := DistributionFromCounts(counts)
		if err != nil {
			continue
		}
		if _, err := ConnectedRealization(dist); err != nil {
			continue
		}
		return dist
	}
	t.Fatal("no connected-realizable sequence after 1000 tries")
	return nil
}

// graphIsConnected checks single-componentness by BFS, independently of
// the library's own connectivity machinery (the point of the harness is
// to not trust the code under test).
func graphIsConnected(g *Graph) bool {
	n := g.NumVertices
	if n <= 1 {
		return true
	}
	adj := make([][]int32, n)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}

// degreeCountsOf tallies a graph's degree multiset for comparison with
// the requested distribution.
func degreeCountsOf(g *Graph) map[int64]int64 {
	counts := map[int64]int64{}
	for _, d := range g.Degrees(1) {
		counts[d]++
	}
	return counts
}

func assertConnectedSample(t *testing.T, g *Graph, want map[int64]int64, label string) {
	t.Helper()
	if rep := g.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("%s: output not simple: %+v", label, rep)
	}
	got := degreeCountsOf(g)
	for d, c := range want {
		if got[d] != c {
			t.Fatalf("%s: degree %d count = %d, want %d", label, d, got[d], c)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: degree multiset %v, want %v", label, got, want)
	}
	if !graphIsConnected(g) {
		t.Fatalf("%s: output disconnected", label)
	}
}

// TestConnectedPropertyHarness is the property-based battery of the
// connected sampler: seeded random degree sequences through the public
// API across seeds × workers × fixed/adaptive stopping. Both paths are
// exact-degree in Connected mode — Shuffle mixes the given edge list,
// Generate seeds from a connected realization of the distribution — so
// every sample must be simple, connected (by an independent BFS), and
// preserve the degree multiset exactly. Tier-1 (no -short skip): the
// sequences are tiny, so the sweep is fast.
func TestConnectedPropertyHarness(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for s := 0; s < 5; s++ {
		dist := randomConnectedDist(t, r)
		want := map[int64]int64{}
		for _, c := range dist.Classes {
			want[c.Degree] = c.Count
		}
		seedGraph, err := ConnectedRealization(dist)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []uint64{3, 17} {
			for _, workers := range []int{1, 4} {
				for _, adaptive := range []bool{false, true} {
					opt := Options{Seed: seed, Workers: workers, Connected: true}
					if adaptive {
						opt.StopPolicy = &StopPolicy{Statistic: StopOnSuccessRate, Floor: 4, Budget: 12}
					} else {
						opt.SwapIterations = 5
					}
					label := fmt.Sprintf("%v seed=%d workers=%d adaptive=%v", want, seed, workers, adaptive)

					g := NewGraph(append([]Edge(nil), seedGraph.Edges...), seedGraph.NumVertices)
					res, err := Shuffle(g, opt)
					if err != nil {
						t.Fatalf("%s: Shuffle: %v", label, err)
					}
					assertConnectedSample(t, res.Graph, want, label)
					if res.Connectivity == nil {
						t.Fatalf("%s: Connected run reported no connectivity stats", label)
					}

					gen, err := Generate(dist, opt)
					if err != nil {
						t.Fatalf("%s: Generate: %v", label, err)
					}
					assertConnectedSample(t, gen.Graph, want, label+" (Generate)")
				}
			}
		}
	}
}

// TestConnectedShuffleRepairsDisconnectedInput: Shuffle with Connected
// set must first repair a disconnected (but simple, degree-legal) input
// and then keep it connected — two disjoint 6-rings come out as one
// connected 2-regular graph with all degrees intact.
func TestConnectedShuffleRepairsDisconnectedInput(t *testing.T) {
	var edges []Edge
	for i := int32(0); i < 6; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % 6})
		edges = append(edges, Edge{U: 6 + i, V: 6 + (i+1)%6})
	}
	g := NewGraph(edges, 12)
	res, err := Shuffle(g, Options{Seed: 9, Connected: true, SwapIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	assertConnectedSample(t, res.Graph, map[int64]int64{2: 12}, "two-rings")
}

// TestConnectedRejectsNonSimpleSpace: the option is defined for the
// simple cell only, and the public layer must say so before any work.
func TestConnectedRejectsNonSimpleSpace(t *testing.T) {
	dist, err := DistributionFromCounts(map[int64]int64{2: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, space := range []Space{SpaceLoopyStub, SpaceLoopyVertex, SpaceMultigraphStub, SpaceMultigraphVertex} {
		if _, err := Generate(dist, Options{Seed: 1, Connected: true, Space: space, SwapIterations: 2}); err == nil {
			t.Errorf("%v: Connected accepted in a non-simple space", space)
		}
	}
}
