package nullgraph

import (
	"math"
	"testing"
)

func digraphCycle(n int) *Digraph {
	arcs := make([]Arc, n)
	for i := 0; i < n; i++ {
		arcs[i] = Arc{From: int32(i), To: int32((i + 1) % n)}
	}
	return NewDigraph(arcs, n)
}

func TestGenerateDirectedEndToEnd(t *testing.T) {
	// Joint distribution from a synthetic digraph: draw out/in degrees
	// from mirrored skewed sequences.
	out := make([]int64, 3000)
	in := make([]int64, 3000)
	for i := range out {
		out[i] = int64(i%7) + 1
		in[len(in)-1-i] = int64(i%7) + 1
	}
	dist := JointFromDegrees(out, in)
	res, err := GenerateDirected(dist, Options{Seed: 3, SwapIterations: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	got := float64(res.Graph.NumArcs())
	want := float64(dist.NumArcs())
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("arcs %v, want ~%v", got, want)
	}
	if len(res.SwapIterations) != 5 {
		t.Errorf("swap stats = %d", len(res.SwapIterations))
	}
}

func TestShuffleDirectedFacade(t *testing.T) {
	g := digraphCycle(300)
	outBefore, inBefore := g.Degrees(1)
	res, err := ShuffleDirected(g, Options{Seed: 5, MixUntilSwapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mixed {
		t.Error("cycle did not mix")
	}
	outAfter, inAfter := g.Degrees(1)
	for v := range outBefore {
		if outBefore[v] != outAfter[v] || inBefore[v] != inAfter[v] {
			t.Fatalf("degrees changed at %d", v)
		}
	}
}

// TestShuffleDirectedAdaptive drives the directed adaptive stopper: the
// outcome must be adaptive on the success-rate trace (the directed
// chain's only wired statistic) with degrees preserved.
func TestShuffleDirectedAdaptive(t *testing.T) {
	g := digraphCycle(300)
	outBefore, inBefore := g.Degrees(1)
	res, err := ShuffleDirected(g, Options{
		Seed:       5,
		StopPolicy: &StopPolicy{Floor: 6, Budget: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stop
	if st == nil || st.Policy != "adaptive" {
		t.Fatalf("Stop = %+v, want adaptive", st)
	}
	if st.Statistic != "success-rate" {
		t.Errorf("directed adaptive statistic = %q, want success-rate", st.Statistic)
	}
	if st.Iterations != len(res.SwapIterations) || st.Iterations < 6 || st.Iterations > 64 {
		t.Errorf("iterations %d (stats %d) outside [6, 64]", st.Iterations, len(res.SwapIterations))
	}
	outAfter, inAfter := g.Degrees(1)
	for v := range outBefore {
		if outBefore[v] != outAfter[v] || inBefore[v] != inAfter[v] {
			t.Fatalf("degrees changed at %d", v)
		}
	}
}

func TestKleitmanWangFacade(t *testing.T) {
	dist := JointFromDegrees([]int64{1, 1, 1}, []int64{1, 1, 1})
	g, err := KleitmanWang(dist)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 3 {
		t.Errorf("arcs = %d", g.NumArcs())
	}
	back := JointOf(g, 1)
	if len(back.Classes) != len(dist.Classes) {
		t.Error("realization changed joint distribution")
	}
	// Non-realizable input errors.
	if _, err := KleitmanWang(JointFromDegrees([]int64{2, 0}, []int64{0, 2})); err == nil {
		t.Error("non-realizable accepted")
	}
}

func TestAnalyticsFacade(t *testing.T) {
	tri := NewGraph([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 4}}, 5)
	if got := CountTriangles(tri, 1); got != 1 {
		t.Errorf("triangles = %d", got)
	}
	_, count := ConnectedComponents(tri, 1)
	if count != 2 {
		t.Errorf("components = %d", count)
	}
	if got := GlobalClusteringCoefficient(tri, 1); got <= 0 {
		t.Errorf("transitivity = %v", got)
	}
}
