package nullgraph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGenerateQuickstartFlow(t *testing.T) {
	dist, err := PowerLawDistribution(5000, 1, 200, 2.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(dist); err != nil {
		t.Fatal(err)
	}
	res, err := Generate(dist, Options{Seed: 42, SwapIterations: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	if len(res.SwapIterations) != 8 {
		t.Errorf("swap stats = %d, want 8", len(res.SwapIterations))
	}
	q := Quality(res.Graph, dist, 4)
	if math.Abs(q.Edges) > 0.08 {
		t.Errorf("edge error %v", q.Edges)
	}
}

func TestShufflePreservesDegrees(t *testing.T) {
	// Build a small deterministic graph, shuffle, compare degrees.
	var edges []Edge
	for i := int32(0); i < 500; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % 500})
	}
	g := NewGraph(edges, 500)
	before := g.Degrees(1)
	res, err := Shuffle(g, Options{Seed: 7, SwapIterations: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != g {
		t.Error("Shuffle must operate in place")
	}
	after := g.Degrees(1)
	for v := range before {
		if before[v] != after[v] {
			t.Fatalf("degree of %d changed", v)
		}
	}
}

// TestSpaceMatrixInvariants drives every cell of the sampling-space
// matrix through the public API across seeds × workers and checks the
// output is a legal state of its cell — simple cells must also pass
// the simplicity check, and Shuffle must preserve degrees exactly in
// every cell.
func TestSpaceMatrixInvariants(t *testing.T) {
	dist, err := DistributionFromCounts(map[int64]int64{2: 120, 5: 16})
	if err != nil {
		t.Fatal(err)
	}
	spaces := []Space{SpaceSimple, SpaceSimpleVertex, SpaceLoopyStub, SpaceLoopyVertex, SpaceMultigraphStub, SpaceMultigraphVertex}
	for _, space := range spaces {
		for _, seed := range []uint64{3, 17} {
			for _, workers := range []int{1, 4} {
				opt := Options{Seed: seed, Workers: workers, SwapIterations: 4, Space: space}
				res, err := Generate(dist, opt)
				if err != nil {
					t.Fatalf("%v seed=%d workers=%d: %v", space, seed, workers, err)
				}
				if !res.Graph.SatisfiesSpace(space) {
					t.Errorf("%v seed=%d workers=%d: Generate output violates its space", space, seed, workers)
				}
				if (space == SpaceSimple || space == SpaceSimpleVertex) && !res.Graph.CheckSimplicity().IsSimple() {
					t.Errorf("%v seed=%d workers=%d: simple-cell output not simple", space, seed, workers)
				}

				// Shuffle from a ring (simple, hence legal in every cell)
				// must stay in-space and preserve degrees exactly.
				var edges []Edge
				for i := int32(0); i < 200; i++ {
					edges = append(edges, Edge{U: i, V: (i + 1) % 200})
				}
				g := NewGraph(edges, 200)
				before := g.Degrees(1)
				if _, err := Shuffle(g, opt); err != nil {
					t.Fatalf("%v seed=%d workers=%d: Shuffle: %v", space, seed, workers, err)
				}
				if !g.SatisfiesSpace(space) {
					t.Errorf("%v seed=%d workers=%d: Shuffle output violates its space", space, seed, workers)
				}
				after := g.Degrees(1)
				for v := range before {
					if before[v] != after[v] {
						t.Fatalf("%v seed=%d workers=%d: degree of %d changed", space, seed, workers, v)
					}
				}
			}
		}
	}
}

func TestMixUntilSwapped(t *testing.T) {
	dist, err := DistributionFromCounts(map[int64]int64{2: 1000, 5: 40})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(dist, Options{Seed: 5, MixUntilSwapped: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mixed {
		t.Error("MixUntilSwapped did not reach full mixing")
	}
}

// TestAdaptiveStopPolicy exercises the public StopPolicy path: the run
// must report an adaptive outcome, respect the floor and budget, and
// agree with the per-iteration stats it returned.
func TestAdaptiveStopPolicy(t *testing.T) {
	dist, err := DistributionFromCounts(map[int64]int64{2: 1000, 5: 40})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(dist, Options{
		Seed:       5,
		Workers:    1,
		StopPolicy: &StopPolicy{Floor: 6, Budget: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stop
	if st == nil || st.Policy != "adaptive" {
		t.Fatalf("Stop = %+v, want adaptive", st)
	}
	if st.Iterations != len(res.SwapIterations) {
		t.Errorf("Stop.Iterations = %d, SwapIterations = %d", st.Iterations, len(res.SwapIterations))
	}
	if st.Iterations < 6 || st.Iterations > 64 {
		t.Errorf("iterations %d outside [floor 6, budget 64]", st.Iterations)
	}
	if st.Reason != "converged" && st.Reason != "budget" {
		t.Errorf("unexpected stop reason %q", st.Reason)
	}
	if len(st.Checkpoints) == 0 {
		t.Error("adaptive run recorded no checkpoints")
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	// Fixed-budget runs must say so too.
	res, err = Generate(dist, Options{Seed: 5, Workers: 1, SwapIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop == nil || res.Stop.Policy != "fixed" || res.Stop.Iterations != 3 {
		t.Errorf("fixed run Stop = %+v", res.Stop)
	}
}

func TestBaselinesExported(t *testing.T) {
	dist, err := DistributionFromCounts(map[int64]int64{1: 200, 50: 4})
	if err != nil {
		t.Fatal(err)
	}
	om := ChungLuMultigraph(dist, Options{Seed: 1})
	if int64(om.NumEdges()) != dist.NumEdges() {
		t.Errorf("O(m) edges = %d, want %d", om.NumEdges(), dist.NumEdges())
	}
	erased, rep := ChungLuErased(dist, Options{Seed: 1})
	if !erased.CheckSimplicity().IsSimple() {
		t.Error("erased output not simple")
	}
	if rep.IsSimple() {
		t.Error("extreme skew produced no erasures (wildly unlikely)")
	}
	bern, err := ChungLuBernoulli(dist, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bern.CheckSimplicity().IsSimple() {
		t.Error("Bernoulli output not simple")
	}
	hh, err := HavelHakimi(dist)
	if err != nil {
		t.Fatal(err)
	}
	got := DistributionOf(hh, 1)
	if got.NumEdges() != dist.NumEdges() {
		t.Error("Havel-Hakimi did not realize the distribution exactly")
	}
}

func TestLFRExported(t *testing.T) {
	res, err := LFR(LFRConfig{
		NumVertices: 1500, DegreeGamma: 2.2, MinDegree: 3, MaxDegree: 40,
		CommunityGamma: 1.8, MinCommunity: 25, MaxCommunity: 200,
		Mu: 0.25, SwapIterations: 2, Seed: 9, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) < 2 {
		t.Errorf("only %d communities", len(res.Communities))
	}
	if math.Abs(res.ObservedMu-0.25) > 0.12 {
		t.Errorf("observed mu %v", res.ObservedMu)
	}
}

func TestIORoundTrips(t *testing.T) {
	g := NewGraph([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}, 3)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualAsSets(g) {
		t.Error("graph IO round trip failed")
	}
	dist, _ := DistributionFromCounts(map[int64]int64{1: 2, 2: 1})
	buf.Reset()
	if err := WriteDistribution(&buf, dist); err != nil {
		t.Fatal(err)
	}
	dback, err := ReadDistribution(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if dback.NumVertices() != 3 {
		t.Error("distribution IO round trip failed")
	}
}

func TestValidateRejectsNonGraphical(t *testing.T) {
	dist, err := DistributionFromCounts(map[int64]int64{3: 2, 1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(dist); err == nil {
		t.Error("non-graphical distribution validated")
	}
}

func TestMetricsExported(t *testing.T) {
	if g := Gini([]int64{1, 1, 1, 1}); g != 0 {
		t.Errorf("Gini regular = %v", g)
	}
	star := NewGraph([]Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}, 4)
	if a := Assortativity(star, 1); a >= 0 {
		t.Errorf("star assortativity = %v", a)
	}
	s := ComputeStats(star, 1)
	if s.MaxDegree != 3 || s.NumEdges != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	// Bit-exact reproducibility holds for Workers=1 (parallel swap
	// proposals race benignly between workers; see the Options doc).
	dist, _ := DistributionFromCounts(map[int64]int64{3: 400, 7: 20})
	a, err := Generate(dist, Options{Seed: 3, SwapIterations: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(dist, Options{Seed: 3, SwapIterations: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.EqualAsSets(b.Graph) {
		t.Error("same seed produced different graphs")
	}
}
