package nullgraph

import (
	"io"

	"nullgraph/internal/directed"
)

// Directed graph support — the extrapolation the paper points to via
// Durak et al. [14] and Erdős–Miklós–Toroczkai [15]. The directed swap
// chain adds the triangle-reversal move required for ergodicity (pair
// exchanges alone cannot reorient a directed 3-cycle).

// Arc is a directed edge From → To.
type Arc = directed.Arc

// Digraph is an arc-centric directed graph.
type Digraph = directed.ArcList

// JointDistribution is the {(out, in), count} directed analog of a
// degree distribution.
type JointDistribution = directed.JointDistribution

// NewDigraph wraps an arc slice with an explicit vertex count,
// validating endpoint ranges.
func NewDigraph(arcs []Arc, numVertices int) *Digraph {
	return directed.NewArcList(arcs, numVertices)
}

// JointFromDegrees builds the joint distribution of per-vertex out/in
// degree sequences.
func JointFromDegrees(out, in []int64) *JointDistribution {
	return directed.FromJointDegrees(out, in)
}

// JointOf extracts the joint distribution of an existing digraph.
func JointOf(g *Digraph, workers int) *JointDistribution {
	return directed.OfArcList(g, workers)
}

// DirectedResult is the output of GenerateDirected / ShuffleDirected.
type DirectedResult struct {
	Graph          *Digraph
	SwapIterations []directed.SwapIterStats
	Mixed          bool
}

// GenerateDirected draws a uniformly random simple digraph matching the
// joint (out, in) distribution in expectation: directed probability
// heuristic → directed edge-skipping → double-arc swaps with triangle
// reversals.
func GenerateDirected(dist *JointDistribution, opt Options) (*DirectedResult, error) {
	res, err := directed.Generate(dist, directed.Options{
		Workers:         opt.Workers,
		Seed:            opt.Seed,
		SwapIterations:  opt.SwapIterations,
		MixUntilSwapped: opt.MixUntilSwapped,
	})
	if err != nil {
		return nil, err
	}
	return &DirectedResult{Graph: res.Graph, SwapIterations: res.Swaps.PerIteration, Mixed: res.Mixed}, nil
}

// ShuffleDirected mixes an existing digraph in place, preserving every
// vertex's in- and out-degree.
func ShuffleDirected(g *Digraph, opt Options) *DirectedResult {
	res := directed.Shuffle(g, directed.Options{
		Workers:         opt.Workers,
		Seed:            opt.Seed,
		SwapIterations:  opt.SwapIterations,
		MixUntilSwapped: opt.MixUntilSwapped,
	})
	return &DirectedResult{Graph: res.Graph, SwapIterations: res.Swaps.PerIteration, Mixed: res.Mixed}
}

// KleitmanWang deterministically realizes a joint degree distribution
// as a simple digraph (directed Havel-Hakimi); an error reports a
// non-realizable sequence.
func KleitmanWang(dist *JointDistribution) (*Digraph, error) {
	return directed.KleitmanWang(dist)
}

// ReadDigraph parses a text arc list ("from to" per line, '#'/'%'
// comments).
func ReadDigraph(r io.Reader) (*Digraph, error) { return directed.ReadArcListText(r) }

// WriteDigraph writes a text arc list preserving orientation and order.
func WriteDigraph(w io.Writer, g *Digraph) error { return directed.WriteArcListText(w, g) }

// ReadJointDistribution parses "out in count" lines.
func ReadJointDistribution(r io.Reader) (*JointDistribution, error) {
	return directed.ReadJoint(r)
}

// WriteJointDistribution writes "out in count" lines.
func WriteJointDistribution(w io.Writer, d *JointDistribution) error {
	return directed.WriteJoint(w, d)
}
