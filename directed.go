package nullgraph

import (
	"context"
	"fmt"
	"io"

	"nullgraph/internal/directed"
	"nullgraph/internal/par"
)

// Directed graph support — the extrapolation the paper points to via
// Durak et al. [14] and Erdős–Miklós–Toroczkai [15]. The directed swap
// chain adds the triangle-reversal move required for ergodicity (pair
// exchanges alone cannot reorient a directed 3-cycle).

// Arc is a directed edge From → To.
type Arc = directed.Arc

// Digraph is an arc-centric directed graph.
type Digraph = directed.ArcList

// JointDistribution is the {(out, in), count} directed analog of a
// degree distribution.
type JointDistribution = directed.JointDistribution

// NewDigraph wraps an arc slice with an explicit vertex count,
// validating endpoint ranges.
func NewDigraph(arcs []Arc, numVertices int) *Digraph {
	return directed.NewArcList(arcs, numVertices)
}

// JointFromDegrees builds the joint distribution of per-vertex out/in
// degree sequences.
func JointFromDegrees(out, in []int64) *JointDistribution {
	return directed.FromJointDegrees(out, in)
}

// JointOf extracts the joint distribution of an existing digraph.
func JointOf(g *Digraph, workers int) *JointDistribution {
	return directed.OfArcList(g, workers)
}

// DirectedResult is the output of GenerateDirected / ShuffleDirected.
type DirectedResult struct {
	Graph          *Digraph
	SwapIterations []directed.SwapIterStats
	Mixed          bool
	// Stop records how the swap phase ended; with Options.StopPolicy it
	// carries the adaptive monitor's outcome and checkpoint trail. The
	// directed chain always monitors the swap success rate (no graph
	// statistic is wired), whatever StopPolicy.Statistic says.
	Stop *StopReport
}

// directedOptions maps the shared Options onto the directed pipeline,
// rejecting fields the directed chain does not implement rather than
// silently dropping them: RefineProbabilities targets the undirected
// class matrix, and CollectReport's recorder instruments only the
// undirected engines.
func directedOptions(opt Options) (directed.Options, error) {
	if opt.RefineProbabilities > 0 {
		return directed.Options{}, fmt.Errorf("nullgraph: RefineProbabilities is not supported for directed generation")
	}
	if opt.CollectReport {
		return directed.Options{}, fmt.Errorf("nullgraph: CollectReport is not supported for directed generation")
	}
	return directed.Options{
		Workers:         opt.Workers,
		Seed:            opt.Seed,
		SwapIterations:  opt.SwapIterations,
		MixUntilSwapped: opt.MixUntilSwapped,
		StopPolicy:      opt.StopPolicy,
	}, nil
}

// GenerateDirected draws a uniformly random simple digraph matching the
// joint (out, in) distribution in expectation: directed probability
// heuristic → directed edge-skipping → double-arc swaps with triangle
// reversals. Options the directed chain does not implement
// (RefineProbabilities, CollectReport) are rejected with an error.
// Equivalent to GenerateDirectedContext with a background context.
func GenerateDirected(dist *JointDistribution, opt Options) (*DirectedResult, error) {
	return GenerateDirectedContext(context.Background(), dist, opt)
}

// GenerateDirectedContext is GenerateDirected honoring ctx:
// cancellation is cooperative (between phases and swap iterations),
// the partial digraph is abandoned, and ctx.Err() is returned. A ctx
// already canceled on entry returns before any work.
func GenerateDirectedContext(ctx context.Context, dist *JointDistribution, opt Options) (*DirectedResult, error) {
	if err := ctxEntryErr(ctx); err != nil {
		return nil, err
	}
	dopt, err := directedOptions(opt)
	if err != nil {
		return nil, err
	}
	stop, release := par.WatchContext(ctx)
	defer release()
	dopt.Stop = stop
	res, err := directed.Generate(dist, dopt)
	if err != nil {
		return nil, ctxError(ctx, err)
	}
	return &DirectedResult{Graph: res.Graph, SwapIterations: res.Swaps.PerIteration, Mixed: res.Mixed, Stop: res.Stop}, nil
}

// ShuffleDirected mixes an existing digraph in place, preserving every
// vertex's in- and out-degree. The digraph must be non-nil with
// in-range endpoints — the same validation as the undirected Shuffle —
// and unsupported Options (RefineProbabilities, CollectReport) are
// rejected with an error. Equivalent to ShuffleDirectedContext with a
// background context.
func ShuffleDirected(g *Digraph, opt Options) (*DirectedResult, error) {
	return ShuffleDirectedContext(context.Background(), g, opt)
}

// ShuffleDirectedContext is ShuffleDirected honoring ctx. On
// cancellation it returns ctx.Err() with g left valid — every
// vertex's in- and out-degree preserved — but under-mixed. A ctx
// already canceled on entry leaves g untouched.
func ShuffleDirectedContext(ctx context.Context, g *Digraph, opt Options) (*DirectedResult, error) {
	if err := ctxEntryErr(ctx); err != nil {
		return nil, err
	}
	dopt, err := directedOptions(opt)
	if err != nil {
		return nil, err
	}
	stop, release := par.WatchContext(ctx)
	defer release()
	dopt.Stop = stop
	res, err := directed.Shuffle(g, dopt)
	if err != nil {
		return nil, ctxError(ctx, err)
	}
	return &DirectedResult{Graph: res.Graph, SwapIterations: res.Swaps.PerIteration, Mixed: res.Mixed, Stop: res.Stop}, nil
}

// KleitmanWang deterministically realizes a joint degree distribution
// as a simple digraph (directed Havel-Hakimi); an error reports a
// non-realizable sequence.
func KleitmanWang(dist *JointDistribution) (*Digraph, error) {
	return directed.KleitmanWang(dist)
}

// ReadDigraph parses a text arc list ("from to" per line, '#'/'%'
// comments).
func ReadDigraph(r io.Reader) (*Digraph, error) { return directed.ReadArcListText(r) }

// WriteDigraph writes a text arc list preserving orientation and order.
func WriteDigraph(w io.Writer, g *Digraph) error { return directed.WriteArcListText(w, g) }

// ReadJointDistribution parses "out in count" lines.
func ReadJointDistribution(r io.Reader) (*JointDistribution, error) {
	return directed.ReadJoint(r)
}

// WriteJointDistribution writes "out in count" lines.
func WriteJointDistribution(w io.Writer, d *JointDistribution) error {
	return directed.WriteJoint(w, d)
}
