package nullgraph

import (
	"context"
	"errors"
	"sync/atomic"

	"nullgraph/internal/core"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
)

// ErrEngineBusy reports a concurrent call on a single Engine session.
// An Engine is a single-session object: it owns one set of pipeline
// buffers and one sample counter, so overlapping Generate/Shuffle calls
// would race on them. The guard turns that misuse into this error —
// check with errors.Is. Callers that need concurrency hold one Engine
// per goroutine (or pool engines, as cmd/nullgraphd does).
var ErrEngineBusy = core.ErrEngineBusy

// Engine is a reusable generation session. Where Generate and Shuffle
// build and tear down every pipeline buffer per call, an Engine owns
// them for its lifetime — the attachment-probability matrix (cached
// while the distribution is unchanged), the edge-skip chunk and edge
// buffers, the swap engine with its hash table and permutation
// scratch, and one persistent worker pool shared by all phases — so
// repeated calls reach a steady state with near-zero allocations.
//
// Successive calls draw successive members of one sample batch: the
// engine keeps a sample counter, advanced only by successful calls,
// and runs sample s under SampleSeed(opt.Seed, s). Sample 0 is
// bit-identical (Workers = 1) to the one-shot entry points with the
// same Options, which are themselves thin wrappers over a single-use
// session, so migrating a loop from Generate to an Engine changes no
// output — only the allocation profile.
//
// The Result of Generate/GenerateContext aliases engine-owned buffers
// and is valid until the next call on the same Engine; callers that
// keep samples must copy them out. Shuffle mixes the caller's graph in
// place, as the package-level Shuffle does.
//
// An Engine is not safe for concurrent use: overlapping
// Generate/Shuffle calls fail fast with ErrEngineBusy rather than
// racing on the session's buffers. Close releases the worker pool; the
// engine must not be used afterwards.
type Engine struct {
	opt    Options
	eng    *core.Engine
	rec    *obs.Recorder
	sample uint64

	// busy serializes calls: the sample counter and every engine-owned
	// buffer belong to at most one in-flight call.
	busy atomic.Bool
}

// acquire claims the session for one call; an overlapping call gets
// ErrEngineBusy instead of a data race on the sample counter and
// scratch buffers.
func (e *Engine) acquire() error {
	if !e.busy.CompareAndSwap(false, true) {
		return ErrEngineBusy
	}
	return nil
}

func (e *Engine) release() { e.busy.Store(false) }

// NewEngine prepares a session for the given options. Options are
// fixed for the session; in particular Options.CollectReport attaches
// one recorder whose report accumulates across the session's calls.
func NewEngine(opt Options) *Engine {
	copt := opt.core()
	rec := opt.recorder()
	copt.Recorder = rec
	return &Engine{opt: opt, eng: core.NewEngine(copt), rec: rec}
}

// Sample returns the index the next successful call will run as.
func (e *Engine) Sample() uint64 { return e.sample }

// SetSample repositions the batch counter, letting a caller skip ahead
// (e.g. to shard one seed's batch across processes) or re-draw an
// earlier sample.
func (e *Engine) SetSample(sample uint64) { e.sample = sample }

// Generate draws the next sample of the batch from dist. Equivalent to
// GenerateContext with a background context.
func (e *Engine) Generate(dist *DegreeDistribution) (*Result, error) {
	return e.GenerateContext(context.Background(), dist)
}

// GenerateContext draws the next sample of the batch from dist,
// honoring ctx: cancellation is cooperative with bounded latency, the
// partial sample is abandoned, ctx.Err() is returned, and the engine
// remains reusable. A ctx already canceled on entry returns before any
// work. The returned Result aliases engine-owned buffers and is valid
// until the next call.
func (e *Engine) GenerateContext(ctx context.Context, dist *DegreeDistribution) (*Result, error) {
	if err := ctxEntryErr(ctx); err != nil {
		return nil, err
	}
	if err := e.acquire(); err != nil {
		return nil, err
	}
	defer e.release()
	stop, release := par.WatchContext(ctx)
	defer release()
	out, err := e.eng.GenerateSample(dist, e.sample, stop)
	if err != nil {
		return nil, ctxError(ctx, err)
	}
	e.sample++
	return wrapResult(out, e.rec), nil
}

// Shuffle mixes g in place as the next sample of the batch. Equivalent
// to ShuffleContext with a background context.
func (e *Engine) Shuffle(g *Graph) (*Result, error) {
	return e.ShuffleContext(context.Background(), g)
}

// ShuffleContext mixes g in place as the next sample of the batch,
// honoring ctx. On cancellation it returns ctx.Err() with g left valid
// — degree sequence and edge count preserved (and simplicity, for
// simple inputs) — but under-mixed: swaps committed before the stop
// are kept. A ctx already canceled on entry leaves g untouched. The
// sample counter does not advance on cancellation, so retrying re-runs
// the same sample index.
func (e *Engine) ShuffleContext(ctx context.Context, g *Graph) (*Result, error) {
	if err := ctxEntryErr(ctx); err != nil {
		return nil, err
	}
	if err := e.acquire(); err != nil {
		return nil, err
	}
	defer e.release()
	stop, release := par.WatchContext(ctx)
	defer release()
	out, err := e.eng.ShuffleSample(g, e.sample, stop)
	if err != nil {
		return nil, ctxError(ctx, err)
	}
	e.sample++
	return wrapResult(out, e.rec), nil
}

// Close releases the session's worker pool. Idempotent; the engine
// must not be used afterwards.
func (e *Engine) Close() { e.eng.Close() }

// SampleSeed derives the pipeline seed of sample s in a batch drawn
// under a base seed — the schedule Engine runs its sample counter
// through. Sample 0 is the base seed itself; later samples decorrelate
// through a golden-ratio multiply. Exported so external batch runners
// (e.g. sharded across processes) can reproduce any single sample with
// a one-shot call: Generate with Options.Seed = SampleSeed(seed, s)
// equals the batch's sample s at Workers = 1.
func SampleSeed(seed, sample uint64) uint64 { return core.SampleSeed(seed, sample) }

// ctxEntryErr is the entry gate of every context-taking API: a ctx
// already canceled returns its error before any input is read or
// touched.
func ctxEntryErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ctxError translates the internal par.ErrStopped sentinel into the
// context's error at the API boundary; other errors pass through. The
// context.Canceled fallback covers the narrow race where the watcher
// observed Done before ctx.Err was published to this goroutine.
func ctxError(ctx context.Context, err error) error {
	if errors.Is(err, par.ErrStopped) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return context.Canceled
	}
	return err
}
