# Developer entry points. CI (.github/workflows/ci.yml) runs `verify`
# and `race`; `bench-swap` tracks the hot path's allocation budget and
# `bench-gen` the session-reuse allocation budget.

GO ?= go

# RACE_PKGS are the packages with real cross-goroutine protocols worth
# the race detector's 10x slowdown: the swap hot path plus the session
# and cancellation layers (core Engine reuse, edge-skip stop polling,
# context watchers).
RACE_PKGS = ./internal/swap/... ./internal/hashtable/... ./internal/permute/... ./internal/par/... ./internal/core/... ./internal/edgeskip/...

.PHONY: verify build vet test race bench-swap bench-gen clean

# verify is the tier-1 gate: everything compiles, vets clean, and every
# test passes.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race stresses the concurrent hot-path packages under the race
# detector (shortened statistical tests).
race:
	$(GO) test -race -short $(RACE_PKGS)

# bench-swap emits BENCH_swap.json: ns/op, allocs/op, B/op and
# swaps/sec for one engine Step on a 1M-edge graph. The hot path's
# budget is ~0 allocs/op; see DESIGN.md.
bench-swap:
	$(GO) run ./cmd/benchswap

# bench-gen emits BENCH_generate.json: cold one-shot Generate vs reused
# Engine.Generate (ns/op, allocs/op, B/op) and their byte ratio. The
# session contract is reuse_bytes_ratio <= 0.10; see DESIGN.md §9.
bench-gen:
	$(GO) run ./cmd/benchgen

clean:
	rm -f BENCH_swap.json BENCH_generate.json
