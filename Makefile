# Developer entry points. CI (.github/workflows/ci.yml) runs `verify`,
# `race`, and `lint`; `bench-swap` tracks the hot path's allocation
# budget and `bench-gen` the session-reuse allocation budget.

GO ?= go

.PHONY: verify build vet test test-stat race race-serve lint lint-fix-schemas fuzz-smoke bench-swap bench-gen bench-all bench-check smoke-serve clean

# verify is the tier-1 gate: everything compiles, vets clean, and every
# test passes.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# test-stat runs the tier-2 statistical verification suite
# (internal/statcheck) at its documented default budgets: exact-
# enumeration uniformity for the swap chains, Bernoulli marginals for
# edge-skipping, expected-degree moments for probgen. A few seconds of
# sampling; `go test -short` skips these, plain `go test` includes
# them. Nightly CI runs the same checks at larger budgets via
# cmd/statcheck (see .github/workflows/nightly.yml and DESIGN.md §11).
test-stat:
	$(GO) test -run 'TestStatcheck' -v ./internal/statcheck/...

# race runs the whole module under the race detector (shortened
# statistical tests). Packages without cross-goroutine protocols cost
# little here, and whole-module coverage means a new concurrent package
# can't silently dodge the detector by not being on a list.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/connected

# race-serve re-runs the service and convergence layers' full (un-short)
# tests under the race detector: these two packages carry the module's
# cross-goroutine protocols (engine pool leases, admission gate,
# checkpoint monitors), and -short skips some of their heavier
# concurrency tests.
race-serve:
	$(GO) test -race ./internal/serve ./internal/converge

# lint runs the repo's own analyzer suite (cmd/nullvet: rngshare,
# hotpathalloc, stoppoll, atomicalign, errpropagate, fingerprintcomplete,
# schemaver, goroutinejoin, ctxflow — see DESIGN.md §10 and §15) with the
# committed known-debt baseline, plus staticcheck when installed.
# staticcheck and govulncheck are not vendored; CI installs pinned
# versions, and locally the steps are skipped with a notice when the
# binaries are absent.
lint:
	$(GO) run ./cmd/nullvet -baseline .nullvet-baseline ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI runs it)"; \
	fi

# lint-fix-schemas regenerates internal/analysis/schemas.lock from the
# //nullgraph:schema structs. Run it (and commit the diff) after a
# deliberate report-schema change — the schemaver analyzer fails `lint`
# until the version constant and the lock move together.
lint-fix-schemas:
	$(GO) run ./cmd/nullvet -update-schemas

# fuzz-smoke gives each fuzz target a short randomized burst on top of
# its checked-in seed corpus; CI runs it so the harnesses themselves
# can't rot.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeListBinary -fuzztime=10s ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeListText -fuzztime=10s ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzConnectedSeed -fuzztime=10s ./internal/connected

# bench-swap emits BENCH_swap.json: ns/op, allocs/op, B/op and
# swaps/sec for one engine Step on a 1M-edge graph. The hot path's
# budget is ~0 allocs/op; see DESIGN.md.
bench-swap:
	$(GO) run ./cmd/benchswap

# bench-gen emits BENCH_generate.json: cold one-shot Generate vs reused
# Engine.Generate (ns/op, allocs/op, B/op) and their byte ratio. The
# session contract is reuse_bytes_ratio <= 0.10; see DESIGN.md §9.
bench-gen:
	$(GO) run ./cmd/benchgen

# bench-all regenerates both committed baselines in place. Run it (and
# commit the diff) after a deliberate perf change so bench-check keeps
# gating against current numbers.
bench-all: bench-swap bench-gen

# bench-check measures fresh *.head.json files and gates them against
# the committed baselines with cmd/benchcheck: ns/op within ±15%, a
# hard zero-allocation gate on the swap Step, and the reuse-bytes
# session contract. This is the CI bench-regression job's entry point.
bench-check:
	$(GO) run ./cmd/benchswap -o BENCH_swap.head.json
	$(GO) run ./cmd/benchgen -o BENCH_generate.head.json
	$(GO) run ./cmd/benchcheck \
		-swap-baseline BENCH_swap.json -swap BENCH_swap.head.json \
		-gen-baseline BENCH_generate.json -gen BENCH_generate.head.json

# smoke-serve is the serving smoke gate (DESIGN.md §13): start
# nullgraphd sized for the load, fire 200 requests at concurrency 16
# with loadgen, and gate the emitted BENCH_serve.json with benchcheck's
# absolute -serve gate (zero non-2xx, zero deadline misses, zero
# payload verification failures). The server is always torn down, and
# its log surfaces on failure.
smoke-serve:
	$(GO) build -o nullgraphd.smoke ./cmd/nullgraphd
	./nullgraphd.smoke -addr 127.0.0.1:18080 -max-concurrent 16 -max-queue 64 \
		>nullgraphd.smoke.log 2>&1 & echo $$! > nullgraphd.smoke.pid
	sleep 1
	$(GO) run ./cmd/loadgen -url http://127.0.0.1:18080 \
		-requests 200 -concurrency 16 -o BENCH_serve.json \
		|| { cat nullgraphd.smoke.log; kill `cat nullgraphd.smoke.pid`; exit 1; }
	curl -sf http://127.0.0.1:18080/metrics | grep -E 'nullgraphd_(phase_seconds|stop_decisions)_total' \
		|| { echo "smoke-serve: /metrics missing RunReport series"; kill `cat nullgraphd.smoke.pid`; exit 1; }
	kill `cat nullgraphd.smoke.pid`
	$(GO) run ./cmd/benchcheck -serve BENCH_serve.json
	rm -f nullgraphd.smoke nullgraphd.smoke.pid

# clean removes only derived measurement files; BENCH_swap.json and
# BENCH_generate.json are committed baselines, not build products.
clean:
	rm -f BENCH_swap.head.json BENCH_generate.head.json \
		BENCH_serve.json nullgraphd.smoke nullgraphd.smoke.pid nullgraphd.smoke.log
