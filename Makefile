# Developer entry points. CI (.github/workflows/ci.yml) runs `verify`
# and `race`; `bench-swap` tracks the hot path's allocation budget.

GO ?= go

# RACE_PKGS are the packages on the swap hot path — the ones with real
# cross-goroutine protocols worth the race detector's 10x slowdown.
RACE_PKGS = ./internal/swap/... ./internal/hashtable/... ./internal/permute/... ./internal/par/...

.PHONY: verify build vet test race bench-swap clean

# verify is the tier-1 gate: everything compiles, vets clean, and every
# test passes.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race stresses the concurrent hot-path packages under the race
# detector (shortened statistical tests).
race:
	$(GO) test -race -short $(RACE_PKGS)

# bench-swap emits BENCH_swap.json: ns/op, allocs/op, B/op and
# swaps/sec for one engine Step on a 1M-edge graph. The hot path's
# budget is ~0 allocs/op; see DESIGN.md.
bench-swap:
	$(GO) run ./cmd/benchswap

clean:
	rm -f BENCH_swap.json
